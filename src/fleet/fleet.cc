#include "src/fleet/fleet.h"

#include <algorithm>

#include "src/support/rng.h"
#include "src/support/str.h"
#include "src/vm/memory.h"

namespace mv {

std::string FleetRequestKernelSource() {
  return R"(__attribute__((multiverse)) int fast_path;
__attribute__((multiverse)) int log_level;
long served;
long acc;
long log_lines;

__attribute__((multiverse))
void account(long amount) {
  if (fast_path) {
    acc = acc + amount;
  } else {
    long i;
    for (i = 0; i < 8; ++i) { acc = acc + amount; }
    acc = acc - amount * 7;
  }
}

__attribute__((multiverse))
void audit() {
  if (log_level) { log_lines = log_lines + 1; }
}

long handle_request(long tenant, long payload) {
  account(payload + tenant % 7);
  audit();
  served = served + 1;
  return acc;
}

long serve_batch(long base, long n) {
  long i;
  for (i = 0; i < n; ++i) { handle_request(base + i, i % 13); }
  return served;
}
)";
}

Result<std::unique_ptr<Fleet>> Fleet::Build(
    const std::vector<ProgramSource>& sources, const FleetOptions& options) {
  if (options.instances < 1) {
    return Status::InvalidArgument("fleet needs at least one instance");
  }
  if (options.cores_per_instance < 1) {
    return Status::InvalidArgument("fleet instances need at least one core");
  }
  std::unique_ptr<Fleet> fleet(new Fleet(options));
  if (options.share_plan_cache) {
    fleet->plan_cache_ = std::make_shared<PlanCache>();
  }
  for (int i = 0; i < options.instances; ++i) {
    BuildOptions build = options.build;
    build.vm_cores = options.cores_per_instance;
    build.vm_memory = options.vm_memory;
    build.attach.shared_plan_cache = fleet->plan_cache_;
    Result<std::unique_ptr<Program>> program = Program::Build(sources, build);
    if (!program.ok()) {
      return Status(program.status().code(),
                    StrFormat("instance %d: %s", i,
                              program.status().message().c_str()));
    }
    fleet->instances_.push_back(std::move(program.value()));
  }
  // Boot commit: bring every instance to the committed fixpoint of its boot
  // configuration. Identity proofs depend on this — a revert re-commits the
  // old switch values, which reproduces committed text bit-for-bit but can
  // never reproduce a never-committed (generic, unspecialized) image. Also
  // warms the shared plan cache: instance 0 plans cold, the rest replay.
  for (int i = 0; i < options.instances; ++i) {
    Result<CommitOutcome> boot = fleet->runtime(i).CommitWithOutcome();
    if (!boot.ok()) {
      // All-or-nothing boot: a fleet must never come up half-committed, so
      // every instance that already reached its boot fixpoint is rolled back
      // to the generic image before the (structured) failure propagates.
      if (options.boot_log != nullptr) {
        options.boot_log->Append(
            RolloutEvent::Kind::kFlipFailed, /*wave=*/-1, i,
            StrFormat("boot commit FAILED: %s", boot.status().ToString().c_str()));
      }
      std::string rollback_notes;
      for (int j = i - 1; j >= 0; --j) {
        Result<PatchStats> undo = fleet->runtime(j).Revert();
        const std::string note =
            undo.ok() ? StrFormat("instance %d rolled back", j)
                      : StrFormat("instance %d rollback FAILED: %s", j,
                                  undo.status().ToString().c_str());
        if (options.boot_log != nullptr) {
          options.boot_log->Append(RolloutEvent::Kind::kBootRollback,
                                   /*wave=*/-1, j, note);
        }
        rollback_notes += "; " + note;
      }
      return Status(boot.status().code(),
                    StrFormat("instance %d boot commit: %s%s", i,
                              boot.status().message().c_str(),
                              rollback_notes.c_str()));
    }
    if (options.boot_log != nullptr) {
      options.boot_log->Append(
          RolloutEvent::Kind::kBootCommit, /*wave=*/-1, i,
          StrFormat("%d functions committed, %d sites patched",
                    boot->patch.functions_committed,
                    boot->patch.callsites_patched));
    }
  }
  fleet->pinned_.assign(options.instances, false);
  fleet->load_active_.assign(options.instances, false);
  fleet->load_requests_.assign(options.instances, 0);
  fleet->load_served_before_.assign(options.instances, 0);
  // Durable journals attach only now, after the boot fixpoint: boot commits
  // are not journaled because RestartInstance reproduces them
  // deterministically from the stored sources. The journal records the
  // post-boot history — switch writes, pins, CommitAll, coordinator flips.
  fleet->sources_ = sources;
  for (int i = 0; i < options.instances; ++i) {
    fleet->journals_.push_back(std::make_unique<DurableJournal>());
    TxnOptions txn = fleet->runtime(i).txn_options();
    txn.wal = fleet->journals_.back().get();
    fleet->runtime(i).set_txn_options(txn);
  }
  return fleet;
}

Status Fleet::WriteSwitch(int instance, const std::string& name, int64_t value) {
  // Descriptor width, not a blanket 8-byte store: switches narrower than 8
  // bytes may have live neighbours in the data section.
  int width = 8;
  uint64_t addr = 0;
  for (const RtVariable& var : runtime(instance).table().variables) {
    if (var.name == name) {
      width = static_cast<int>(var.width);
      addr = var.addr;
      break;
    }
  }
  // Write-ahead: the intent record lands in the durable journal before the
  // value moves, so a crash here leaves the old value in place and recovery
  // has the old bytes to restore if a trailing group must be undone.
  // (journals_ is empty only during Build's boot phase, which is rebuilt
  // from sources on restart rather than replayed.)
  if (!journals_.empty()) {
    if (addr == 0) {
      MV_ASSIGN_OR_RETURN(addr, program(instance).SymbolAddress(name));
    }
    MV_ASSIGN_OR_RETURN(const int64_t old_value, ReadSwitchValue(instance, name));
    MV_RETURN_IF_ERROR(journals_[instance]->AppendSwitchSet(
        addr, static_cast<uint32_t>(width), static_cast<uint64_t>(old_value),
        static_cast<uint64_t>(value)));
  }
  return program(instance).WriteGlobal(name, value, width);
}

Result<int64_t> Fleet::ReadSwitchValue(int instance, const std::string& name) {
  for (const RtVariable& var : runtime(instance).table().variables) {
    if (var.name == name) {
      return runtime(instance).ReadSwitch(var);
    }
  }
  return program(instance).ReadGlobal(name);
}

Status Fleet::CommitAll(const Assignment& values) {
  for (int i = 0; i < size(); ++i) {
    for (const auto& [name, value] : values) {
      MV_RETURN_IF_ERROR(WriteSwitch(i, name, value));
    }
    Result<CommitOutcome> outcome = runtime(i).CommitWithOutcome();
    if (!outcome.ok()) {
      return Status(outcome.status().code(),
                    StrFormat("instance %d commit: %s", i,
                              outcome.status().message().c_str()));
    }
    metrics_.instance(i).commit.Accumulate(outcome->stats);
  }
  return Status::Ok();
}

std::vector<Request> Fleet::GenerateRequests(uint64_t count) {
  std::vector<Request> requests;
  requests.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    const uint64_t n = stream_cursor_++;
    Request request;
    // SplitMix64 keyed on (stream_seed, cursor): every slice of the stream is
    // a pure function of the pair, so two runs of the same fleet see the same
    // tenants in the same order.
    request.tenant = SplitMix64(options_.stream_seed ^ n) %
                     static_cast<uint64_t>(options_.tenants);
    request.payload = SplitMix64(options_.stream_seed + 2 * n + 1) % 1024;
    requests.push_back(request);
  }
  return requests;
}

int Fleet::RouteTenant(uint64_t tenant) const {
  for (const TenantPin& pin : pins_) {
    if (pin.tenant == tenant) {
      return pin.instance;
    }
  }
  std::vector<int> pool = UnpinnedInstances();
  if (pool.empty()) {
    return 0;  // fully pinned fleet: degenerate, route to instance 0
  }
  return pool[tenant % pool.size()];
}

Status Fleet::Serve(const std::vector<Request>& requests,
                    const std::string& handler) {
  for (const Request& request : requests) {
    const int i = RouteTenant(request.tenant);
    InstanceHealth& health = metrics_.instance(i);
    const uint64_t before = program(i).vm().core(0).ticks;
    Result<uint64_t> result =
        program(i).Call(handler, {request.tenant, request.payload});
    if (!result.ok()) {
      ++health.dropped_requests;
      continue;
    }
    const double cycles = TicksToCycles(program(i).vm().core(0).ticks - before);
    ++health.requests_served;
    ++health.timed_requests;
    health.request_cycles += cycles;
    health.max_request_cycles = std::max(health.max_request_cycles, cycles);
  }
  return Status::Ok();
}

Status Fleet::StartLoad(int instance, const std::string& load_fn, uint64_t base,
                        uint64_t requests, uint64_t warmup_steps) {
  if (options_.cores_per_instance < 2) {
    return Status::FailedPrecondition(
        "in-flight load needs a second core per instance");
  }
  if (load_active_[instance]) {
    return Status::FailedPrecondition("instance already has an active load");
  }
  Program& prog = program(instance);
  MV_ASSIGN_OR_RETURN(const uint64_t fn_addr, prog.SymbolAddress(load_fn));
  int64_t served_before = 0;
  if (!options_.served_counter.empty()) {
    MV_ASSIGN_OR_RETURN(served_before, prog.ReadGlobal(options_.served_counter));
  }
  SetupCall(prog.image(), &prog.vm(), fn_addr, {base, requests}, /*core=*/1);
  // Step into the batch so the flip really races live execution. A tiny batch
  // may halt during warmup — DrainLoad handles the already-halted core.
  for (uint64_t i = 0; i < warmup_steps; ++i) {
    if (prog.vm().Step(1).has_value()) {
      break;
    }
  }
  load_active_[instance] = true;
  load_requests_[instance] = requests;
  load_served_before_[instance] = served_before;
  return Status::Ok();
}

Status Fleet::DrainLoad(int instance) {
  if (!load_active_[instance]) {
    return Status::Ok();
  }
  load_active_[instance] = false;
  Program& prog = program(instance);
  InstanceHealth& health = metrics_.instance(instance);
  const uint64_t requests = load_requests_[instance];
  const uint64_t budget = 10'000 * (requests + 1) + 100'000;
  const VmExit exit = prog.vm().Run(1, budget);

  uint64_t completed = requests;
  if (!options_.served_counter.empty()) {
    Result<int64_t> served_now = prog.ReadGlobal(options_.served_counter);
    if (served_now.ok()) {
      const int64_t delta = *served_now - load_served_before_[instance];
      completed = delta < 0 ? 0 : std::min<uint64_t>(delta, requests);
    }
  }
  if (exit.kind == VmExit::Kind::kHalt) {
    health.requests_served += completed;
    return Status::Ok();
  }
  // The batch died mid-flight — a fault on torn text, a stray trap, or a
  // wedged loop. Everything it had not completed is torn traffic.
  health.requests_served += completed;
  health.torn_requests += requests - completed;
  return Status::Internal(
      StrFormat("instance %d in-flight batch tore: %s", instance,
                exit.ToString().c_str()));
}

Status Fleet::PinTenant(uint64_t tenant, const Assignment& overrides) {
  TenantPin* existing = nullptr;
  for (TenantPin& pin : pins_) {
    if (pin.tenant == tenant) {
      existing = &pin;
      break;
    }
  }
  int instance;
  if (existing != nullptr) {
    instance = existing->instance;
  } else {
    std::vector<int> pool = UnpinnedInstances();
    if (pool.size() < 2) {
      return Status::FailedPrecondition(
          "pinning would leave no unpinned instance to shard over");
    }
    instance = pool.back();  // take from the back, keep shard order stable
  }
  // Route the overrides through the per-switch path: write the switch, then
  // re-bind exactly the functions referencing it (Table 1 CommitRefs) — the
  // rest of the instance's bindings are untouched.
  for (const auto& [name, value] : overrides) {
    MV_RETURN_IF_ERROR(WriteSwitch(instance, name, value));
    MV_RETURN_IF_ERROR(runtime(instance).CommitRefs(name).status());
  }
  if (existing != nullptr) {
    existing->overrides = overrides;
  } else {
    pinned_[instance] = true;
    TenantPin pin;
    pin.tenant = tenant;
    pin.instance = instance;
    pin.overrides = overrides;
    pins_.push_back(std::move(pin));
  }
  return Status::Ok();
}

Result<RecoveryOutcome> Fleet::RestartInstance(int instance) {
  if (journals_.empty()) {
    return Status::FailedPrecondition("fleet has no durable journals attached");
  }
  DurableJournal* wal = journals_[instance].get();

  // (1) Recover the dead VM in place. Its memory is the crashed process's
  // core image — possibly torn mid-patch — and RecoverFromJournal resolves
  // it: sealed transactions redone forward, the unsealed tail undone in
  // reverse, the result checksum-proven fully-old or fully-new.
  Program& dead = program(instance);
  Result<RecoveryOutcome> recovered =
      RecoverFromJournal(&dead.vm(), &dead.image(), wal);
  if (!recovered.ok()) {
    return Status(recovered.status().code(),
                  StrFormat("instance %d recovery: %s", instance,
                            recovered.status().message().c_str()));
  }
  const RecoveryOutcome outcome = recovered.value();

  // (2) Read the resolved configuration off the recovered image. The dead
  // process's runtime bookkeeping (logical bindings, planned transitions)
  // died with it, but the descriptor table is static and the data section is
  // recovered, so the switch values are trustworthy.
  std::vector<std::pair<std::string, int64_t>> resolved;
  for (const RtVariable& var : runtime(instance).table().variables) {
    Result<int64_t> value = runtime(instance).ReadSwitch(var);
    if (!value.ok()) {
      return Status(value.status().code(),
                    StrFormat("instance %d recovery: switch '%s': %s", instance,
                              var.name.c_str(),
                              value.status().message().c_str()));
    }
    resolved.emplace_back(var.name, value.value());
  }

  // (3) Build the replacement from the stored sources, boot it, then commit
  // it to the journal's last SEALED configuration through the normal
  // transactional path — which rebuilds exactly the runtime bookkeeping the
  // crash destroyed and must land on the proven text. The committed cells
  // come from the recovery outcome, not from the recovered data section: the
  // data section may additionally hold write-ahead intent that never sealed
  // (a flip whose attempt failed cleanly leaves its switch writes in data
  // while the rollback restores the text).
  BuildOptions build = options_.build;
  build.vm_cores = options_.cores_per_instance;
  build.vm_memory = options_.vm_memory;
  build.attach.shared_plan_cache = plan_cache_;
  Result<std::unique_ptr<Program>> rebuilt = Program::Build(sources_, build);
  if (!rebuilt.ok()) {
    return Status(rebuilt.status().code(),
                  StrFormat("instance %d restart build: %s", instance,
                            rebuilt.status().message().c_str()));
  }
  std::unique_ptr<Program> fresh = std::move(rebuilt.value());
  MV_RETURN_IF_ERROR(fresh->runtime().CommitWithOutcome().status());
  for (const RecoveryOutcome::CommittedSwitch& cell :
       outcome.committed_switches) {
    MV_RETURN_IF_ERROR(
        fresh->vm().memory().WriteRaw(cell.addr, cell.bytes.data(),
                                      cell.width));
  }
  MV_RETURN_IF_ERROR(fresh->runtime().CommitWithOutcome().status());

  // (4) The replacement must be bit-identical to the recovered image before
  // it is adopted — the whole point of recovery is that the instance lands
  // fully-old or fully-new, never approximately-right.
  const uint64_t rebuilt_checksum = fresh->runtime().TextChecksum();
  if (outcome.final_text_checksum != 0 &&
      rebuilt_checksum != outcome.final_text_checksum) {
    return Status::Internal(StrFormat(
        "instance %d restart: rebuilt text checksum %016llx != recovered "
        "%016llx — replacement diverges from the proven image",
        instance, (unsigned long long)rebuilt_checksum,
        (unsigned long long)outcome.final_text_checksum));
  }

  // (5) Re-write the resolved data values on top WITHOUT committing: any
  // difference from the committed cells is uncommitted flip intent the dead
  // process carried, and the caller's retry commits it the same way the
  // original attempt would have.
  for (const auto& [name, value] : resolved) {
    int width = 8;
    for (const RtVariable& var : fresh->runtime().table().variables) {
      if (var.name == name) {
        width = static_cast<int>(var.width);
        break;
      }
    }
    MV_RETURN_IF_ERROR(fresh->WriteGlobal(name, value, width));
  }

  instances_[instance] = std::move(fresh);
  load_active_[instance] = false;
  load_requests_[instance] = 0;
  load_served_before_[instance] = 0;
  // Re-attach the journal: the replacement's boot/catch-up commits above are
  // deliberately un-journaled (a second restart reproduces them the same
  // way); everything after this point is write-ahead logged again.
  TxnOptions txn = runtime(instance).txn_options();
  txn.wal = wal;
  runtime(instance).set_txn_options(txn);
  return outcome;
}

std::vector<int> Fleet::UnpinnedInstances() const {
  std::vector<int> pool;
  for (int i = 0; i < size(); ++i) {
    if (!pinned_[i]) {
      pool.push_back(i);
    }
  }
  return pool;
}

}  // namespace mv

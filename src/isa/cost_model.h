// Cycle cost model for MVISA.
//
// Costs are expressed in ticks; 4 ticks = 1 modelled CPU cycle. The sub-cycle
// resolution lets NOPs and predicted branches cost fractions of a cycle, as
// they effectively do on the out-of-order x86 cores the paper measured
// (i5-7400 / i5-6400).
//
// Calibration targets (see DESIGN.md §2 and EXPERIMENTS.md):
//  * an uncontended spinlock acquire+release pair with an atomic exchange
//    lands near the paper's ~29 cycles,
//  * the dynamic-variability overhead (global load + compare + predicted
//    branch per function) lands near the paper's ~1.5 cycles per function,
//  * a branch misprediction costs 16.5 cycles (the paper's Skylake footnote
//    cites 16.5/19–20 cycles).
#ifndef MULTIVERSE_SRC_ISA_COST_MODEL_H_
#define MULTIVERSE_SRC_ISA_COST_MODEL_H_

#include <cstdint>

#include "src/isa/isa.h"

namespace mv {

inline constexpr uint64_t kTicksPerCycle = 4;

struct CostModel {
  // Straight-line instruction costs (ticks).
  uint64_t mov = 2;
  uint64_t alu = 2;
  uint64_t cmp = 2;
  uint64_t setcc = 2;
  uint64_t load = 4;          // L1 hit
  uint64_t store = 2;         // store buffer absorbs it
  uint64_t global_load = 4;   // rip-relative load equivalent
  uint64_t global_store = 2;
  uint64_t push = 2;
  uint64_t pop = 2;
  uint64_t nop = 1;           // 0.25 cycles

  // Control flow.
  uint64_t jmp = 2;
  uint64_t branch_predicted = 1;
  uint64_t branch_mispredict_penalty = 66;  // 16.5 cycles
  uint64_t call = 6;
  uint64_t ret = 6;
  uint64_t call_indirect = 8;
  uint64_t indirect_mispredict_penalty = 72;  // 18 cycles

  // System-ish instructions.
  uint64_t sti_cli_native = 8;      // 2 cycles: flag manipulation w/ serialization
  uint64_t sti_cli_guest_trap = 600;  // 150 cycles: #GP + hypervisor emulation
  uint64_t hypercall = 16;          // 4 cycles: paravirtual fast path
  uint64_t xchg_atomic = 70;        // 17.5 cycles: locked read-modify-write
  uint64_t pause = 16;
  uint64_t fence = 20;
  uint64_t rdtsc = 60;
  uint64_t vmcall = 40;
  uint64_t hlt = 0;

  // Live-patching costs (src/livepatch). bkpt_trap is charged to the core
  // that fetches a BKPT (x86 #BP: trap entry + handler dispatch). The host
  // patcher costs advance the live-commit engine's virtual patch clock:
  // patch_write models one W^X-disciplined text poke (mprotect pair + store),
  // icache_flush_ipi one cross-core invalidation broadcast, and
  // stop_machine_ipi the per-core cost of a stop-machine rendezvous.
  uint64_t bkpt_trap = 400;         // 100 cycles
  uint64_t patch_write = 800;       // 200 cycles
  uint64_t icache_flush_ipi = 400;  // 100 cycles
  uint64_t stop_machine_ipi = 400;  // 100 cycles per stopped core
};

inline double TicksToCycles(uint64_t ticks) {
  return static_cast<double>(ticks) / static_cast<double>(kTicksPerCycle);
}

}  // namespace mv

#endif  // MULTIVERSE_SRC_ISA_COST_MODEL_H_

#include "src/isa/isa.h"

#include <cstring>

#include "src/support/str.h"

namespace mv {

namespace {

void PutU8(std::vector<uint8_t>* out, uint8_t v) { out->push_back(v); }

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
  out->push_back(static_cast<uint8_t>(v >> 16));
  out->push_back(static_cast<uint8_t>(v >> 24));
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

uint32_t GetU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) | (static_cast<uint32_t>(p[3]) << 24);
}

uint64_t GetU64(const uint8_t* p) {
  return static_cast<uint64_t>(GetU32(p)) | (static_cast<uint64_t>(GetU32(p + 4)) << 32);
}

bool FitsI32(int64_t v) { return v >= INT32_MIN && v <= INT32_MAX; }
bool FitsU32(int64_t v) { return v >= 0 && v <= UINT32_MAX; }

enum class Layout {
  kNone,          // [op]                           1
  kR,             // [op][r]                        2
  kRR,            // [op][ra][rb]                   3
  kRImm64,        // [op][r][imm64]                 10
  kRImm32,        // [op][r][imm32]                 6
  kRImm8,         // [op][r][imm8]                  3
  kMem,           // [op][r][rb][off32]             7
  kGlobal,        // [op][r][w][abs32]              7
  kCCR,           // [op][cc][r]                    3
  kRel32,         // [op][rel32]                    5
  kCCRel32,       // [op][cc][rel32]                6
  kCallR,         // [op][r][pad][pad][pad]         5
  kImm8,          // [op][imm8]                     2
};

Layout OpLayout(Op op) {
  switch (op) {
    case Op::kMovRI:
      return Layout::kRImm64;
    case Op::kMovRR:
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kUDiv:
    case Op::kURem:
    case Op::kSDiv:
    case Op::kSRem:
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
    case Op::kShl:
    case Op::kShr:
    case Op::kSar:
    case Op::kCmp:
    case Op::kXchg:
      return Layout::kRR;
    case Op::kLd8U:
    case Op::kLd8S:
    case Op::kLd16U:
    case Op::kLd16S:
    case Op::kLd32U:
    case Op::kLd32S:
    case Op::kLd64:
    case Op::kSt8:
    case Op::kSt16:
    case Op::kSt32:
    case Op::kSt64:
      return Layout::kMem;
    case Op::kLdg:
    case Op::kStg:
      return Layout::kGlobal;
    case Op::kAddI:
    case Op::kSubI:
    case Op::kMulI:
    case Op::kAndI:
    case Op::kOrI:
    case Op::kXorI:
    case Op::kCmpI:
      return Layout::kRImm32;
    case Op::kShlI:
    case Op::kShrI:
    case Op::kSarI:
      return Layout::kRImm8;
    case Op::kNot:
    case Op::kNeg:
    case Op::kPush:
    case Op::kPop:
    case Op::kRdtsc:
      return Layout::kR;
    case Op::kSetCC:
      return Layout::kCCR;
    case Op::kJmp:
    case Op::kCall:
      return Layout::kRel32;
    case Op::kJcc:
      return Layout::kCCRel32;
    case Op::kCallR:
      return Layout::kCallR;
    case Op::kCallM:
      return Layout::kRel32;  // same shape: [op][imm32]
    case Op::kRet:
    case Op::kNop:
    case Op::kHlt:
    case Op::kPause:
    case Op::kFence:
    case Op::kSti:
    case Op::kCli:
    case Op::kBkpt:
      return Layout::kNone;
    case Op::kHypercall:
    case Op::kVmCall:
      return Layout::kImm8;
    case Op::kInvalid:
      return Layout::kNone;
  }
  return Layout::kNone;
}

int LayoutSize(Layout layout) {
  switch (layout) {
    case Layout::kNone:
      return 1;
    case Layout::kR:
      return 2;
    case Layout::kRR:
      return 3;
    case Layout::kRImm64:
      return 10;
    case Layout::kRImm32:
      return 6;
    case Layout::kRImm8:
      return 3;
    case Layout::kMem:
      return 7;
    case Layout::kGlobal:
      return 7;
    case Layout::kCCR:
      return 3;
    case Layout::kRel32:
      return 5;
    case Layout::kCCRel32:
      return 6;
    case Layout::kCallR:
      return 5;
    case Layout::kImm8:
      return 2;
  }
  return 1;
}

bool ValidOp(uint8_t byte) {
  Op op = static_cast<Op>(byte);
  switch (op) {
    case Op::kMovRI:
    case Op::kMovRR:
    case Op::kLd8U:
    case Op::kLd8S:
    case Op::kLd16U:
    case Op::kLd16S:
    case Op::kLd32U:
    case Op::kLd32S:
    case Op::kLd64:
    case Op::kSt8:
    case Op::kSt16:
    case Op::kSt32:
    case Op::kSt64:
    case Op::kLdg:
    case Op::kStg:
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kUDiv:
    case Op::kURem:
    case Op::kSDiv:
    case Op::kSRem:
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
    case Op::kShl:
    case Op::kShr:
    case Op::kSar:
    case Op::kAddI:
    case Op::kSubI:
    case Op::kMulI:
    case Op::kAndI:
    case Op::kOrI:
    case Op::kXorI:
    case Op::kShlI:
    case Op::kShrI:
    case Op::kSarI:
    case Op::kNot:
    case Op::kNeg:
    case Op::kCmp:
    case Op::kCmpI:
    case Op::kSetCC:
    case Op::kJmp:
    case Op::kJcc:
    case Op::kCall:
    case Op::kCallR:
    case Op::kCallM:
    case Op::kRet:
    case Op::kPush:
    case Op::kPop:
    case Op::kNop:
    case Op::kHlt:
    case Op::kPause:
    case Op::kFence:
    case Op::kSti:
    case Op::kCli:
    case Op::kXchg:
    case Op::kRdtsc:
    case Op::kHypercall:
    case Op::kVmCall:
    case Op::kBkpt:
      return true;
    default:
      return false;
  }
}

}  // namespace

int GWidthBytes(GWidth w) {
  switch (w) {
    case GWidth::kU8:
    case GWidth::kS8:
      return 1;
    case GWidth::kU16:
    case GWidth::kS16:
      return 2;
    case GWidth::kU32:
    case GWidth::kS32:
      return 4;
    case GWidth::kU64:
    case GWidth::kS64:
      return 8;
  }
  return 8;
}

bool GWidthSigned(GWidth w) {
  switch (w) {
    case GWidth::kS8:
    case GWidth::kS16:
    case GWidth::kS32:
    case GWidth::kS64:
      return true;
    default:
      return false;
  }
}

Result<int> Encode(const Insn& insn, std::vector<uint8_t>* out) {
  const Layout layout = OpLayout(insn.op);
  const size_t start = out->size();
  PutU8(out, static_cast<uint8_t>(insn.op));
  switch (layout) {
    case Layout::kNone:
      break;
    case Layout::kR:
      PutU8(out, insn.a);
      break;
    case Layout::kRR:
      PutU8(out, insn.a);
      PutU8(out, insn.b);
      break;
    case Layout::kRImm64:
      PutU8(out, insn.a);
      PutU64(out, static_cast<uint64_t>(insn.imm));
      break;
    case Layout::kRImm32:
      if (!FitsI32(insn.imm)) {
        out->resize(start);
        return Status::OutOfRange(StrFormat("imm32 overflow in %s", OpName(insn.op)));
      }
      PutU8(out, insn.a);
      PutU32(out, static_cast<uint32_t>(static_cast<int32_t>(insn.imm)));
      break;
    case Layout::kRImm8:
      if (insn.imm < 0 || insn.imm > 63) {
        out->resize(start);
        return Status::OutOfRange("shift amount must be in [0, 63]");
      }
      PutU8(out, insn.a);
      PutU8(out, static_cast<uint8_t>(insn.imm));
      break;
    case Layout::kMem:
      if (!FitsI32(insn.imm)) {
        out->resize(start);
        return Status::OutOfRange("mem offset overflow");
      }
      PutU8(out, insn.a);
      PutU8(out, insn.b);
      PutU32(out, static_cast<uint32_t>(static_cast<int32_t>(insn.imm)));
      break;
    case Layout::kGlobal:
      if (!FitsU32(insn.imm)) {
        out->resize(start);
        return Status::OutOfRange("global address must fit 32 bits");
      }
      PutU8(out, insn.a);
      PutU8(out, static_cast<uint8_t>(insn.gw));
      PutU32(out, static_cast<uint32_t>(insn.imm));
      break;
    case Layout::kCCR:
      PutU8(out, static_cast<uint8_t>(insn.cc));
      PutU8(out, insn.a);
      break;
    case Layout::kRel32:
      if (!FitsI32(insn.imm)) {
        out->resize(start);
        return Status::OutOfRange("rel32 overflow");
      }
      PutU32(out, static_cast<uint32_t>(static_cast<int32_t>(insn.imm)));
      break;
    case Layout::kCCRel32:
      if (!FitsI32(insn.imm)) {
        out->resize(start);
        return Status::OutOfRange("rel32 overflow");
      }
      PutU8(out, static_cast<uint8_t>(insn.cc));
      PutU32(out, static_cast<uint32_t>(static_cast<int32_t>(insn.imm)));
      break;
    case Layout::kCallR:
      PutU8(out, insn.a);
      PutU8(out, 0);
      PutU8(out, 0);
      PutU8(out, 0);
      break;
    case Layout::kImm8:
      if (insn.imm < 0 || insn.imm > 255) {
        out->resize(start);
        return Status::OutOfRange("imm8 overflow");
      }
      PutU8(out, static_cast<uint8_t>(insn.imm));
      break;
  }
  return static_cast<int>(out->size() - start);
}

Result<Insn> Decode(const uint8_t* bytes, size_t len) {
  if (len == 0) {
    return Status::OutOfRange("decode: empty buffer");
  }
  if (!ValidOp(bytes[0])) {
    return Status::InvalidArgument(StrFormat("decode: unknown opcode 0x%02x", bytes[0]));
  }
  Insn insn;
  insn.op = static_cast<Op>(bytes[0]);
  const Layout layout = OpLayout(insn.op);
  const int size = LayoutSize(layout);
  if (len < static_cast<size_t>(size)) {
    return Status::OutOfRange(StrFormat("decode: truncated %s", OpName(insn.op)));
  }
  insn.size = static_cast<uint8_t>(size);
  switch (layout) {
    case Layout::kNone:
      break;
    case Layout::kR:
      insn.a = bytes[1];
      break;
    case Layout::kRR:
      insn.a = bytes[1];
      insn.b = bytes[2];
      break;
    case Layout::kRImm64:
      insn.a = bytes[1];
      insn.imm = static_cast<int64_t>(GetU64(bytes + 2));
      break;
    case Layout::kRImm32:
      insn.a = bytes[1];
      insn.imm = static_cast<int32_t>(GetU32(bytes + 2));
      break;
    case Layout::kRImm8:
      insn.a = bytes[1];
      insn.imm = bytes[2];
      break;
    case Layout::kMem:
      insn.a = bytes[1];
      insn.b = bytes[2];
      insn.imm = static_cast<int32_t>(GetU32(bytes + 3));
      break;
    case Layout::kGlobal:
      insn.a = bytes[1];
      insn.gw = static_cast<GWidth>(bytes[2] & 0x7);
      insn.imm = GetU32(bytes + 3);
      break;
    case Layout::kCCR:
      insn.cc = static_cast<Cond>(bytes[1]);
      insn.a = bytes[2];
      break;
    case Layout::kRel32:
      insn.imm = static_cast<int32_t>(GetU32(bytes + 1));
      break;
    case Layout::kCCRel32:
      insn.cc = static_cast<Cond>(bytes[1]);
      insn.imm = static_cast<int32_t>(GetU32(bytes + 2));
      break;
    case Layout::kCallR:
      insn.a = bytes[1];
      break;
    case Layout::kImm8:
      insn.imm = bytes[1];
      break;
  }
  const bool has_reg_a = layout == Layout::kR || layout == Layout::kRR ||
                         layout == Layout::kRImm64 || layout == Layout::kRImm32 ||
                         layout == Layout::kRImm8 || layout == Layout::kMem ||
                         layout == Layout::kGlobal || layout == Layout::kCCR ||
                         layout == Layout::kCallR;
  if ((has_reg_a && insn.a >= kNumRegs) ||
      ((layout == Layout::kRR || layout == Layout::kMem) && insn.b >= kNumRegs)) {
    return Status::InvalidArgument("decode: register index out of range");
  }
  return insn;
}

bool EndsSuperblock(Op op) {
  switch (op) {
    case Op::kJmp:
    case Op::kJcc:
    case Op::kCall:
    case Op::kCallR:
    case Op::kCallM:
    case Op::kRet:
    case Op::kHlt:
    case Op::kVmCall:
    case Op::kBkpt:
    case Op::kInvalid:
      return true;
    default:
      return false;
  }
}

const char* OpName(Op op) {
  switch (op) {
    case Op::kInvalid: return "invalid";
    case Op::kMovRI: return "mov";
    case Op::kMovRR: return "mov";
    case Op::kLd8U: return "ld8u";
    case Op::kLd8S: return "ld8s";
    case Op::kLd16U: return "ld16u";
    case Op::kLd16S: return "ld16s";
    case Op::kLd32U: return "ld32u";
    case Op::kLd32S: return "ld32s";
    case Op::kLd64: return "ld64";
    case Op::kSt8: return "st8";
    case Op::kSt16: return "st16";
    case Op::kSt32: return "st32";
    case Op::kSt64: return "st64";
    case Op::kLdg: return "ldg";
    case Op::kStg: return "stg";
    case Op::kAdd: return "add";
    case Op::kSub: return "sub";
    case Op::kMul: return "mul";
    case Op::kUDiv: return "udiv";
    case Op::kURem: return "urem";
    case Op::kSDiv: return "sdiv";
    case Op::kSRem: return "srem";
    case Op::kAnd: return "and";
    case Op::kOr: return "or";
    case Op::kXor: return "xor";
    case Op::kShl: return "shl";
    case Op::kShr: return "shr";
    case Op::kSar: return "sar";
    case Op::kAddI: return "addi";
    case Op::kSubI: return "subi";
    case Op::kMulI: return "muli";
    case Op::kAndI: return "andi";
    case Op::kOrI: return "ori";
    case Op::kXorI: return "xori";
    case Op::kShlI: return "shli";
    case Op::kShrI: return "shri";
    case Op::kSarI: return "sari";
    case Op::kNot: return "not";
    case Op::kNeg: return "neg";
    case Op::kCmp: return "cmp";
    case Op::kCmpI: return "cmpi";
    case Op::kSetCC: return "set";
    case Op::kJmp: return "jmp";
    case Op::kJcc: return "j";
    case Op::kCall: return "call";
    case Op::kCallR: return "callr";
    case Op::kCallM: return "callm";
    case Op::kRet: return "ret";
    case Op::kPush: return "push";
    case Op::kPop: return "pop";
    case Op::kNop: return "nop";
    case Op::kHlt: return "hlt";
    case Op::kPause: return "pause";
    case Op::kFence: return "fence";
    case Op::kSti: return "sti";
    case Op::kCli: return "cli";
    case Op::kXchg: return "xchg";
    case Op::kRdtsc: return "rdtsc";
    case Op::kHypercall: return "hypercall";
    case Op::kVmCall: return "vmcall";
    case Op::kBkpt: return "bkpt";
  }
  return "?";
}

const char* CondName(Cond cc) {
  switch (cc) {
    case Cond::kEq: return "eq";
    case Cond::kNe: return "ne";
    case Cond::kLt: return "lt";
    case Cond::kLe: return "le";
    case Cond::kGt: return "gt";
    case Cond::kGe: return "ge";
    case Cond::kB: return "b";
    case Cond::kBe: return "be";
    case Cond::kA: return "a";
    case Cond::kAe: return "ae";
  }
  return "?";
}

std::string Insn::ToString() const {
  const Layout layout = OpLayout(op);
  switch (layout) {
    case Layout::kNone:
      return OpName(op);
    case Layout::kR:
      return StrFormat("%s r%d", OpName(op), a);
    case Layout::kRR:
      return StrFormat("%s r%d, r%d", OpName(op), a, b);
    case Layout::kRImm64:
      return StrFormat("%s r%d, %lld", OpName(op), a, (long long)imm);
    case Layout::kRImm32:
      return StrFormat("%s r%d, %lld", OpName(op), a, (long long)imm);
    case Layout::kRImm8:
      return StrFormat("%s r%d, %lld", OpName(op), a, (long long)imm);
    case Layout::kMem:
      if (op >= Op::kSt8 && op <= Op::kSt64) {
        return StrFormat("%s [r%d%+lld], r%d", OpName(op), b, (long long)imm, a);
      }
      return StrFormat("%s r%d, [r%d%+lld]", OpName(op), a, b, (long long)imm);
    case Layout::kGlobal:
      if (op == Op::kStg) {
        return StrFormat("%s [0x%llx].w%d, r%d", OpName(op), (unsigned long long)imm,
                         GWidthBytes(gw), a);
      }
      return StrFormat("%s r%d, [0x%llx].w%d", OpName(op), a, (unsigned long long)imm,
                       GWidthBytes(gw));
    case Layout::kCCR:
      return StrFormat("set%s r%d", CondName(cc), a);
    case Layout::kRel32:
      return StrFormat("%s %+lld", OpName(op), (long long)imm);
    case Layout::kCCRel32:
      return StrFormat("j%s %+lld", CondName(cc), (long long)imm);
    case Layout::kCallR:
      return StrFormat("callr r%d", a);
    case Layout::kImm8:
      return StrFormat("%s %lld", OpName(op), (long long)imm);
  }
  return OpName(op);
}

Insn MakeMovRI(uint8_t rd, int64_t imm) {
  Insn i;
  i.op = Op::kMovRI;
  i.a = rd;
  i.imm = imm;
  return i;
}
Insn MakeMovRR(uint8_t rd, uint8_t rs) {
  Insn i;
  i.op = Op::kMovRR;
  i.a = rd;
  i.b = rs;
  return i;
}
Insn MakeLoad(Op op, uint8_t rd, uint8_t rbase, int32_t off) {
  Insn i;
  i.op = op;
  i.a = rd;
  i.b = rbase;
  i.imm = off;
  return i;
}
Insn MakeStore(Op op, uint8_t rs, uint8_t rbase, int32_t off) {
  Insn i;
  i.op = op;
  i.a = rs;
  i.b = rbase;
  i.imm = off;
  return i;
}
Insn MakeLdg(uint8_t rd, GWidth w, uint32_t abs) {
  Insn i;
  i.op = Op::kLdg;
  i.a = rd;
  i.gw = w;
  i.imm = abs;
  return i;
}
Insn MakeStg(uint8_t rs, GWidth w, uint32_t abs) {
  Insn i;
  i.op = Op::kStg;
  i.a = rs;
  i.gw = w;
  i.imm = abs;
  return i;
}
Insn MakeAluRR(Op op, uint8_t rd, uint8_t rs) {
  Insn i;
  i.op = op;
  i.a = rd;
  i.b = rs;
  return i;
}
Insn MakeAluRI(Op op, uint8_t rd, int32_t imm) {
  Insn i;
  i.op = op;
  i.a = rd;
  i.imm = imm;
  return i;
}
Insn MakeShiftI(Op op, uint8_t rd, uint8_t amount) {
  Insn i;
  i.op = op;
  i.a = rd;
  i.imm = amount;
  return i;
}
Insn MakeUnary(Op op, uint8_t rd) {
  Insn i;
  i.op = op;
  i.a = rd;
  return i;
}
Insn MakeCmp(uint8_t ra, uint8_t rb) {
  Insn i;
  i.op = Op::kCmp;
  i.a = ra;
  i.b = rb;
  return i;
}
Insn MakeCmpI(uint8_t ra, int32_t imm) {
  Insn i;
  i.op = Op::kCmpI;
  i.a = ra;
  i.imm = imm;
  return i;
}
Insn MakeSetCC(Cond cc, uint8_t rd) {
  Insn i;
  i.op = Op::kSetCC;
  i.cc = cc;
  i.a = rd;
  return i;
}
Insn MakeJmp(int32_t rel) {
  Insn i;
  i.op = Op::kJmp;
  i.imm = rel;
  return i;
}
Insn MakeJcc(Cond cc, int32_t rel) {
  Insn i;
  i.op = Op::kJcc;
  i.cc = cc;
  i.imm = rel;
  return i;
}
Insn MakeCall(int32_t rel) {
  Insn i;
  i.op = Op::kCall;
  i.imm = rel;
  return i;
}
Insn MakeCallR(uint8_t r) {
  Insn i;
  i.op = Op::kCallR;
  i.a = r;
  return i;
}
Insn MakeCallM(uint32_t abs) {
  Insn i;
  i.op = Op::kCallM;
  i.imm = abs;
  return i;
}
Insn MakeSimple(Op op) {
  Insn i;
  i.op = op;
  return i;
}
Insn MakePush(uint8_t r) {
  Insn i;
  i.op = Op::kPush;
  i.a = r;
  return i;
}
Insn MakePop(uint8_t r) {
  Insn i;
  i.op = Op::kPop;
  i.a = r;
  return i;
}
Insn MakeRdtsc(uint8_t rd) {
  Insn i;
  i.op = Op::kRdtsc;
  i.a = rd;
  return i;
}
Insn MakeHypercall(uint8_t code) {
  Insn i;
  i.op = Op::kHypercall;
  i.imm = code;
  return i;
}
Insn MakeVmCall(uint8_t code) {
  Insn i;
  i.op = Op::kVmCall;
  i.imm = code;
  return i;
}

std::string Disassemble(const uint8_t* bytes, size_t len, uint64_t addr) {
  std::string out;
  size_t off = 0;
  while (off < len) {
    Result<Insn> insn = Decode(bytes + off, len - off);
    if (!insn.ok()) {
      out += StrFormat("%08llx: <%s>\n", (unsigned long long)(addr + off),
                       insn.status().message().c_str());
      break;
    }
    out += StrFormat("%08llx: %s\n", (unsigned long long)(addr + off),
                     insn->ToString().c_str());
    off += insn->size;
  }
  return out;
}

}  // namespace mv

// The MVISA virtual instruction set.
//
// MVISA is an x86-flavoured register machine designed so that the multiverse
// runtime's binary-patching operations are faithful to the paper's AMD64
// implementation:
//   * direct CALL and JMP are exactly 5 bytes (opcode + rel32), matching the
//     paper's "a far-call site is 5 bytes" inlining threshold,
//   * the indirect CALLR is padded to 5 bytes so both the paravirt baseline
//     patcher and the multiverse function-pointer patcher can rewrite it to a
//     direct CALL in place,
//   * NOP is one byte, so patched-out call sites can be filled exactly.
//
// Encoding is little-endian byte-oriented: [opcode][operands...].
#ifndef MULTIVERSE_SRC_ISA_ISA_H_
#define MULTIVERSE_SRC_ISA_ISA_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/support/status.h"

namespace mv {

// 16 general-purpose registers. R15 doubles as the stack pointer.
inline constexpr uint8_t kNumRegs = 16;
inline constexpr uint8_t kRegSP = 15;

// Standard calling convention: arguments in R0..R5, return value in R0,
// R0..R10 caller-saved, R11..R14 callee-saved, R15 = SP.
inline constexpr uint8_t kMaxRegArgs = 6;
inline constexpr uint8_t kFirstCalleeSaved = 11;
inline constexpr uint8_t kLastCalleeSaved = 14;

enum class Op : uint8_t {
  kInvalid = 0x00,

  kMovRI = 0x01,   // rd <- imm64                         [op][rd][imm64]      10 B
  kMovRR = 0x02,   // rd <- rs                            [op][rd][rs]          3 B

  kLd8U = 0x03,    // rd <- zx([rb + off32])              [op][rd][rb][off32]   7 B
  kLd8S = 0x04,
  kLd16U = 0x05,
  kLd16S = 0x06,
  kLd32U = 0x07,
  kLd32S = 0x08,
  kLd64 = 0x09,
  kSt8 = 0x0A,     // [rb + off32] <- low bits of rs      [op][rs][rb][off32]   7 B
  kSt16 = 0x0B,
  kSt32 = 0x0C,
  kSt64 = 0x0D,

  kLdg = 0x0E,     // rd <- mem[abs32] with width code    [op][rd][w][abs32]    7 B
  kStg = 0x0F,     // mem[abs32] <- rs with width code    [op][rs][w][abs32]    7 B

  kAdd = 0x10,     // rd <- rd op rs                      [op][rd][rs]          3 B
  kSub = 0x11,
  kMul = 0x12,
  kUDiv = 0x13,
  kURem = 0x14,
  kSDiv = 0x15,
  kSRem = 0x16,
  kAnd = 0x17,
  kOr = 0x18,
  kXor = 0x19,
  kShl = 0x1A,
  kShr = 0x1B,
  kSar = 0x1C,

  kAddI = 0x20,    // rd <- rd op sx(imm32)               [op][rd][imm32]       6 B
  kSubI = 0x21,
  kMulI = 0x22,
  kAndI = 0x23,
  kOrI = 0x24,
  kXorI = 0x25,
  kShlI = 0x26,    // rd <- rd shift imm8                 [op][rd][imm8]        3 B
  kShrI = 0x27,
  kSarI = 0x28,
  kNot = 0x29,     // rd <- ~rd                           [op][rd]              2 B
  kNeg = 0x2A,     // rd <- -rd                           [op][rd]              2 B

  kCmp = 0x30,     // flags <- compare(ra, rb)            [op][ra][rb]          3 B
  kCmpI = 0x31,    // flags <- compare(r, sx(imm32))      [op][r][imm32]        6 B
  kSetCC = 0x32,   // rd <- cc(flags) ? 1 : 0             [op][cc][rd]          3 B

  kJmp = 0x40,     // pc <- next + rel32                  [op][rel32]           5 B
  kJcc = 0x41,     // if cc(flags): pc <- next + rel32    [op][cc][rel32]       6 B
  kCall = 0x42,    // push next; pc <- next + rel32       [op][rel32]           5 B
  kCallR = 0x43,   // push next; pc <- r                  [op][r][pad][pad][pad] 5 B
  kCallM = 0x47,   // push next; pc <- mem64[abs32]       [op][abs32]           5 B
                   //   (x86 `call *mem` — the PV-Ops call-site form)
  kRet = 0x44,     // pc <- pop                           [op]                  1 B
  kPush = 0x45,    // sp -= 8; [sp] <- r                  [op][r]               2 B
  kPop = 0x46,     // r <- [sp]; sp += 8                  [op][r]               2 B

  kNop = 0x50,     //                                     [op]                  1 B
  kHlt = 0x51,
  kPause = 0x52,
  kFence = 0x53,
  kSti = 0x54,     // set interrupt flag (privileged: traps expensively in guest mode)
  kCli = 0x55,     // clear interrupt flag (privileged)
  kXchg = 0x56,    // atomically rd <-> [rs]              [op][rd][rs]          3 B
  kRdtsc = 0x57,   // rd <- cycle counter (in ticks/4)    [op][rd]              2 B
  kHypercall = 0x58,  // hypervisor service imm8          [op][imm8]            2 B
  kVmCall = 0x59,     // host upcall imm8 (arg in r0)     [op][imm8]            2 B
  kBkpt = 0x5A,       // breakpoint trap (x86 INT3)       [op]                  1 B
};

// Condition codes used by kJcc / kSetCC.
enum class Cond : uint8_t {
  kEq = 0,
  kNe = 1,
  kLt = 2,   // signed
  kLe = 3,
  kGt = 4,
  kGe = 5,
  kB = 6,    // unsigned below
  kBe = 7,
  kA = 8,
  kAe = 9,
};

// Width codes for kLdg / kStg.
enum class GWidth : uint8_t {
  kU8 = 0,
  kS8 = 1,
  kU16 = 2,
  kS16 = 3,
  kU32 = 4,
  kS32 = 5,
  kU64 = 6,
  kS64 = 7,
};

// Byte size of the value a GWidth covers (1, 2, 4 or 8).
int GWidthBytes(GWidth w);
bool GWidthSigned(GWidth w);

// A fully decoded instruction.
struct Insn {
  Op op = Op::kInvalid;
  uint8_t a = 0;        // first register operand (rd / ra / rs)
  uint8_t b = 0;        // second register operand (rs / rb / rbase)
  Cond cc = Cond::kEq;
  GWidth gw = GWidth::kU8;
  int64_t imm = 0;      // imm64 / sx(imm32) / off32 / rel32 / abs32 / imm8
  uint8_t size = 0;     // encoded size in bytes

  std::string ToString() const;  // disassembly
};

// Instruction sizes that the patcher relies on.
inline constexpr int kCallInsnSize = 5;   // CALL rel32 — the paper's inlining threshold
inline constexpr int kJmpInsnSize = 5;    // JMP rel32 — prologue redirection

// BKPT is a single byte, like x86 INT3 (0xCC): the breakpoint-based
// cross-modification protocol overwrites exactly the first byte of a 5-byte
// patchable site with it, which is atomic with respect to instruction fetch.
inline constexpr uint8_t kBkptByte = static_cast<uint8_t>(Op::kBkpt);

// Appends the encoding of `insn` to `out`. Returns the encoded size.
// imm fields must fit their encoded width (checked).
Result<int> Encode(const Insn& insn, std::vector<uint8_t>* out);

// Decodes one instruction at `bytes` (length `len`). Fails on truncation or
// unknown opcode.
Result<Insn> Decode(const uint8_t* bytes, size_t len);

// True when `op` terminates a straight-line decode trace (a superblock, see
// src/vm/superblock.h): it can redirect pc or exit the VM, so nothing after
// it is guaranteed to execute next.
bool EndsSuperblock(Op op);

// Convenience builders used by the code generator and by tests.
Insn MakeMovRI(uint8_t rd, int64_t imm);
Insn MakeMovRR(uint8_t rd, uint8_t rs);
Insn MakeLoad(Op op, uint8_t rd, uint8_t rbase, int32_t off);
Insn MakeStore(Op op, uint8_t rs, uint8_t rbase, int32_t off);
Insn MakeLdg(uint8_t rd, GWidth w, uint32_t abs);
Insn MakeStg(uint8_t rs, GWidth w, uint32_t abs);
Insn MakeAluRR(Op op, uint8_t rd, uint8_t rs);
Insn MakeAluRI(Op op, uint8_t rd, int32_t imm);
Insn MakeShiftI(Op op, uint8_t rd, uint8_t amount);
Insn MakeUnary(Op op, uint8_t rd);
Insn MakeCmp(uint8_t ra, uint8_t rb);
Insn MakeCmpI(uint8_t ra, int32_t imm);
Insn MakeSetCC(Cond cc, uint8_t rd);
Insn MakeJmp(int32_t rel);
Insn MakeJcc(Cond cc, int32_t rel);
Insn MakeCall(int32_t rel);
Insn MakeCallR(uint8_t r);
Insn MakeCallM(uint32_t abs);
Insn MakeSimple(Op op);
Insn MakePush(uint8_t r);
Insn MakePop(uint8_t r);
Insn MakeRdtsc(uint8_t rd);
Insn MakeHypercall(uint8_t code);
Insn MakeVmCall(uint8_t code);

// Disassembles `len` bytes starting at virtual address `addr` (used in error
// messages and debugging dumps).
std::string Disassemble(const uint8_t* bytes, size_t len, uint64_t addr);

const char* OpName(Op op);
const char* CondName(Cond cc);

}  // namespace mv

#endif  // MULTIVERSE_SRC_ISA_ISA_H_

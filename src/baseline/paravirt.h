// The PV-Ops baseline: a faithful model of the Linux kernel's existing
// paravirt binary-patching mechanism that the paper compares against (§6.1).
//
// Like the kernel's mechanism (and unlike multiverse), this patcher:
//  * has no compiler support — call sites are recorded "manually" (in our
//    substrate: codegen records every indirect call through a *non*-
//    multiverse function-pointer global into the .pv.callsites section,
//    standing in for the kernel's inline-assembly macro wrappers);
//  * patches indirect calls to direct calls at boot time and inlines tiny
//    target bodies into the call site;
//  * leaves the callee implementations under their custom no-scratch-register
//    calling convention (mvc functions marked __attribute__((pvop)) save and
//    restore a fixed register set), which is exactly where multiverse wins in
//    the paravirtualized case.
#ifndef MULTIVERSE_SRC_BASELINE_PARAVIRT_H_
#define MULTIVERSE_SRC_BASELINE_PARAVIRT_H_

#include <array>
#include <cstdint>
#include <vector>

#include "src/obj/linker.h"
#include "src/support/status.h"
#include "src/vm/vm.h"

namespace mv {

struct PvPatchStats {
  int sites_patched = 0;   // indirect -> direct
  int sites_inlined = 0;   // tiny body copied into the site
  int sites_skipped = 0;   // null target
};

class ParavirtPatcher {
 public:
  // Parses the .pv.callsites section and snapshots the original site bytes.
  static Result<ParavirtPatcher> Attach(Vm* vm, const Image& image);

  // Boot-time patching: for every recorded site, read the current function-
  // pointer value and rewrite the 5-byte indirect call to a direct call (or
  // inline the body if it fits).
  Result<PvPatchStats> PatchAll();

  // Restores all sites to their original indirect form.
  Result<PvPatchStats> RestoreAll();

  size_t num_sites() const { return sites_.size(); }

 private:
  explicit ParavirtPatcher(Vm* vm) : vm_(vm) {}

  struct Site {
    uint64_t var_addr = 0;
    uint64_t site_addr = 0;
    std::array<uint8_t, 5> original{};
    bool patched = false;
  };

  Vm* vm_;
  std::vector<Site> sites_;
};

}  // namespace mv

#endif  // MULTIVERSE_SRC_BASELINE_PARAVIRT_H_

#include "src/baseline/paravirt.h"

#include <cstring>

#include "src/core/patching.h"
#include "src/isa/isa.h"

namespace mv {

Result<ParavirtPatcher> ParavirtPatcher::Attach(Vm* vm, const Image& image) {
  ParavirtPatcher patcher(vm);
  auto it = image.sections.find(".pv.callsites");
  if (it == image.sections.end() || it->second.size == 0) {
    return patcher;  // nothing to patch
  }
  const SectionPlacement& placement = it->second;
  if (placement.size % 16 != 0) {
    return Status::Internal("malformed .pv.callsites section");
  }
  for (uint64_t off = 0; off < placement.size; off += 16) {
    Site site;
    MV_RETURN_IF_ERROR(vm->memory().ReadRaw(placement.addr + off, &site.var_addr, 8));
    MV_RETURN_IF_ERROR(vm->memory().ReadRaw(placement.addr + off + 8, &site.site_addr, 8));
    MV_RETURN_IF_ERROR(vm->memory().ReadRaw(site.site_addr, site.original.data(), 5));
    patcher.sites_.push_back(site);
  }
  return patcher;
}

Result<PvPatchStats> ParavirtPatcher::PatchAll() {
  PvPatchStats stats;
  for (Site& site : sites_) {
    uint64_t target = 0;
    MV_RETURN_IF_ERROR(vm_->memory().ReadRaw(site.var_addr, &target, 8));
    if (target == 0) {
      ++stats.sites_skipped;
      continue;
    }
    std::optional<std::vector<uint8_t>> tiny = ExtractTinyBody(vm_->memory(), target);
    std::array<uint8_t, 5> bytes{};
    if (tiny.has_value()) {
      bytes.fill(static_cast<uint8_t>(Op::kNop));
      std::memcpy(bytes.data(), tiny->data(), tiny->size());
      ++stats.sites_inlined;
    } else {
      MV_ASSIGN_OR_RETURN(bytes, EncodeCallBytes(site.site_addr, target));
      ++stats.sites_patched;
    }
    MV_RETURN_IF_ERROR(PatchCode(vm_, site.site_addr, bytes));
    site.patched = true;
  }
  return stats;
}

Result<PvPatchStats> ParavirtPatcher::RestoreAll() {
  PvPatchStats stats;
  for (Site& site : sites_) {
    if (!site.patched) {
      continue;
    }
    MV_RETURN_IF_ERROR(PatchCode(vm_, site.site_addr, site.original));
    site.patched = false;
    ++stats.sites_patched;
  }
  return stats;
}

}  // namespace mv

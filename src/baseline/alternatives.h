// The kernel's `alternative` / `alternative_smp` mechanism (paper §1.1): a
// special-purpose boot-time patcher that overwrites *single instructions* in
// place, e.g. NOP-ing out SMAP toggles when the boot CPU lacks the feature.
//
// Faithful to its kernel counterpart, this patcher:
//  * works on hand-identified instruction sites (here: found by scanning a
//    function's code for the marked opcode — the stand-in for the kernel's
//    .altinstructions records produced by inline-assembly macros);
//  * replaces each site with same-length alternative bytes or NOPs;
//  * runs once at boot and supports restoring the original bytes;
//  * knows nothing about functions, variants or guards — which is exactly
//    the reusability gap multiverse closes.
#ifndef MULTIVERSE_SRC_BASELINE_ALTERNATIVES_H_
#define MULTIVERSE_SRC_BASELINE_ALTERNATIVES_H_

#include <cstdint>
#include <vector>

#include "src/isa/isa.h"
#include "src/support/status.h"
#include "src/vm/vm.h"

namespace mv {

struct AltSite {
  uint64_t addr = 0;
  uint8_t length = 0;
  std::vector<uint8_t> original;
};

class AlternativesPatcher {
 public:
  explicit AlternativesPatcher(Vm* vm) : vm_(vm) {}

  // Registers every occurrence of `marked` inside [fn_addr, fn_addr + size)
  // as an alternative site (the build-time half of the mechanism).
  Status CollectSites(uint64_t fn_addr, uint64_t size, Op marked);

  size_t num_sites() const { return sites_.size(); }

  // Boot-time application: overwrite each site with `replacement` bytes
  // (padded with NOPs to the site length), or pure NOPs if empty.
  Result<int> Apply(const std::vector<uint8_t>& replacement = {});

  // Restores all original instruction bytes.
  Result<int> Restore();

 private:
  Vm* vm_;
  std::vector<AltSite> sites_;
  bool applied_ = false;
};

}  // namespace mv

#endif  // MULTIVERSE_SRC_BASELINE_ALTERNATIVES_H_

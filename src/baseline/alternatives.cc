#include "src/baseline/alternatives.h"

#include "src/support/str.h"

namespace mv {

Status AlternativesPatcher::CollectSites(uint64_t fn_addr, uint64_t size, Op marked) {
  const Memory& memory = vm_->memory();
  uint64_t addr = fn_addr;
  const uint64_t end = fn_addr + size;
  while (addr < end) {
    Result<Insn> insn = Decode(memory.raw(addr), memory.size() - addr);
    if (!insn.ok()) {
      return Status::Internal(StrFormat("alternatives: undecodable instruction at 0x%llx",
                                        (unsigned long long)addr));
    }
    if (insn->op == marked) {
      AltSite site;
      site.addr = addr;
      site.length = insn->size;
      site.original.resize(insn->size);
      MV_RETURN_IF_ERROR(memory.ReadRaw(addr, site.original.data(), insn->size));
      sites_.push_back(std::move(site));
    }
    addr += insn->size;
  }
  return Status::Ok();
}

Result<int> AlternativesPatcher::Apply(const std::vector<uint8_t>& replacement) {
  int patched = 0;
  Memory& memory = vm_->memory();
  for (const AltSite& site : sites_) {
    if (replacement.size() > site.length) {
      return Status::InvalidArgument(
          "alternatives: replacement larger than the marked instruction");
    }
    std::vector<uint8_t> bytes(site.length, static_cast<uint8_t>(Op::kNop));
    std::copy(replacement.begin(), replacement.end(), bytes.begin());

    const uint8_t old_perms = memory.PermsAt(site.addr);
    MV_RETURN_IF_ERROR(memory.Protect(site.addr, site.length, old_perms | kPermWrite));
    MV_RETURN_IF_ERROR(memory.WriteRaw(site.addr, bytes.data(), bytes.size()));
    MV_RETURN_IF_ERROR(memory.Protect(site.addr, site.length, old_perms));
    vm_->FlushIcache(site.addr, site.length);
    ++patched;
  }
  applied_ = true;
  return patched;
}

Result<int> AlternativesPatcher::Restore() {
  if (!applied_) {
    return 0;
  }
  int restored = 0;
  Memory& memory = vm_->memory();
  for (const AltSite& site : sites_) {
    const uint8_t old_perms = memory.PermsAt(site.addr);
    MV_RETURN_IF_ERROR(memory.Protect(site.addr, site.length, old_perms | kPermWrite));
    MV_RETURN_IF_ERROR(memory.WriteRaw(site.addr, site.original.data(), site.length));
    MV_RETURN_IF_ERROR(memory.Protect(site.addr, site.length, old_perms));
    vm_->FlushIcache(site.addr, site.length);
    ++restored;
  }
  applied_ = false;
  return restored;
}

}  // namespace mv

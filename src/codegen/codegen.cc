#include "src/codegen/codegen.h"

#include <cstring>
#include <iterator>
#include <map>
#include <unordered_map>

#include "src/isa/isa.h"
#include "src/support/str.h"

namespace mv {

namespace {

// Register plan: r0 is the primary result/chain register, r1/r2 are operand
// scratch, r0..r5 carry call arguments, r11 holds indirect-call targets.
constexpr uint8_t kResultReg = 0;
constexpr uint8_t kScratch1 = 1;
constexpr uint8_t kTargetReg = 11;

// Registers a pvop-convention callee must preserve because the convention
// has no scratch registers (paper §6.1: "all registers have to be saved and
// restored by the callee").
constexpr uint8_t kPvopSavedRegs[] = {6, 7, 8, 9};

Cond PredToCond(CmpPred pred) {
  switch (pred) {
    case CmpPred::kEq: return Cond::kEq;
    case CmpPred::kNe: return Cond::kNe;
    case CmpPred::kSLt: return Cond::kLt;
    case CmpPred::kSLe: return Cond::kLe;
    case CmpPred::kSGt: return Cond::kGt;
    case CmpPred::kSGe: return Cond::kGe;
    case CmpPred::kULt: return Cond::kB;
    case CmpPred::kULe: return Cond::kBe;
    case CmpPred::kUGt: return Cond::kA;
    case CmpPred::kUGe: return Cond::kAe;
  }
  return Cond::kEq;
}

Cond NegateCond(Cond cc) {
  switch (cc) {
    case Cond::kEq: return Cond::kNe;
    case Cond::kNe: return Cond::kEq;
    case Cond::kLt: return Cond::kGe;
    case Cond::kGe: return Cond::kLt;
    case Cond::kLe: return Cond::kGt;
    case Cond::kGt: return Cond::kLe;
    case Cond::kB: return Cond::kAe;
    case Cond::kAe: return Cond::kB;
    case Cond::kBe: return Cond::kA;
    case Cond::kA: return Cond::kBe;
  }
  return Cond::kEq;
}

GWidth IrTypeToGWidth(IrType type) {
  switch (type.byte_size()) {
    case 1: return type.is_signed ? GWidth::kS8 : GWidth::kU8;
    case 2: return type.is_signed ? GWidth::kS16 : GWidth::kU16;
    case 4: return type.is_signed ? GWidth::kS32 : GWidth::kU32;
    default: return type.is_signed ? GWidth::kS64 : GWidth::kU64;
  }
}

Op LoadOpForType(IrType type) {
  switch (type.byte_size()) {
    case 1: return type.is_signed ? Op::kLd8S : Op::kLd8U;
    case 2: return type.is_signed ? Op::kLd16S : Op::kLd16U;
    case 4: return type.is_signed ? Op::kLd32S : Op::kLd32U;
    default: return Op::kLd64;
  }
}

Op StoreOpForType(IrType type) {
  switch (type.byte_size()) {
    case 1: return Op::kSt8;
    case 2: return Op::kSt16;
    case 4: return Op::kSt32;
    default: return Op::kSt64;
  }
}

Op BinToOp(BinKind kind) {
  switch (kind) {
    case BinKind::kAdd: return Op::kAdd;
    case BinKind::kSub: return Op::kSub;
    case BinKind::kMul: return Op::kMul;
    case BinKind::kSDiv: return Op::kSDiv;
    case BinKind::kUDiv: return Op::kUDiv;
    case BinKind::kSRem: return Op::kSRem;
    case BinKind::kURem: return Op::kURem;
    case BinKind::kAnd: return Op::kAnd;
    case BinKind::kOr: return Op::kOr;
    case BinKind::kXor: return Op::kXor;
    case BinKind::kShl: return Op::kShl;
    case BinKind::kLShr: return Op::kShr;
    case BinKind::kAShr: return Op::kSar;
  }
  return Op::kAdd;
}

std::optional<Op> BinToImmOp(BinKind kind) {
  switch (kind) {
    case BinKind::kAdd: return Op::kAddI;
    case BinKind::kSub: return Op::kSubI;
    case BinKind::kMul: return Op::kMulI;
    case BinKind::kAnd: return Op::kAndI;
    case BinKind::kOr: return Op::kOrI;
    case BinKind::kXor: return Op::kXorI;
    case BinKind::kShl: return Op::kShlI;
    case BinKind::kLShr: return Op::kShrI;
    case BinKind::kAShr: return Op::kSarI;
    default: return std::nullopt;
  }
}

bool FitsImm32(int64_t v) { return v >= INT32_MIN && v <= INT32_MAX; }

class FnEmitter {
 public:
  FnEmitter(const Module& module, const Function& fn, ObjectFile* obj, int text_sec,
            CodegenInfo* info)
      : module_(module), fn_(fn), obj_(obj), text_sec_(text_sec), info_(info) {}

  Status Emit();

 private:
  std::vector<uint8_t>& Text() {
    return obj_->sections[static_cast<size_t>(text_sec_)].data;
  }
  uint64_t Offset() { return Text().size(); }

  Status EmitInsn(const Insn& insn) {
    Result<int> size = Encode(insn, &Text());
    if (!size.ok()) {
      return Status::Internal(StrFormat("%s: encode failed: %s", fn_.name.c_str(),
                                        size.status().message().c_str()));
    }
    return Status::Ok();
  }

  int64_t SlotOffset(uint32_t slot) const { return 8 * static_cast<int64_t>(slot); }
  int64_t SpillOffset(uint32_t vreg) const {
    return 8 * static_cast<int64_t>(fn_.slots.size() + vreg);
  }

  Status LoadOperandTo(uint8_t reg, const Operand& op);
  Status FlushChain();
  // Prepares lhs in r0 and rhs in r1 (rescuing a chained rhs). Afterwards the
  // chain is consumed.
  Status PrepareBinaryOperands(const Operand& lhs, const Operand& rhs);
  Status StoreResult(const BasicBlock& bb, size_t index, uint32_t vreg);
  Status EmitNormalize(uint8_t reg, IrType type);
  Status EmitOnce(uint64_t fn_start);
  Status EmitBlock(const BasicBlock& bb);
  Status EmitInstr(const BasicBlock& bb, size_t index, bool* fused_next);
  Status EmitCall(const Instr& instr, const BasicBlock& bb, size_t index);
  Status EmitBranch(Cond cc, uint32_t target_bb);
  Status EmitJump(uint32_t target_bb);
  Status EmitEpilogue(const Instr& instr);

  const Module& module_;
  const Function& fn_;
  ObjectFile* obj_;
  int text_sec_;
  CodegenInfo* info_;

  uint64_t frame_size_ = 0;
  bool frame_used_ = false;   // any SP-relative access emitted
  uint32_t chain_vreg_ = kNoVreg;
  bool chain_stored_ = false;  // chained value also written to its spill slot
  std::unordered_map<uint32_t, int> use_count_;  // per current block
  std::map<uint32_t, uint64_t> block_offsets_;
  struct Fixup {
    uint64_t field_offset;
    uint32_t bb;
  };
  std::vector<Fixup> fixups_;
};

Status FnEmitter::LoadOperandTo(uint8_t reg, const Operand& op) {
  if (op.is_const()) {
    return EmitInsn(MakeMovRI(reg, op.imm));
  }
  if (op.is_vreg()) {
    if (chain_vreg_ == op.vreg) {
      if (reg != kResultReg) {
        return EmitInsn(MakeMovRR(reg, kResultReg));
      }
      return Status::Ok();
    }
    frame_used_ = true;
    return EmitInsn(MakeLoad(Op::kLd64, reg, kRegSP,
                             static_cast<int32_t>(SpillOffset(op.vreg))));
  }
  return Status::Internal(fn_.name + ": load of none-operand");
}

Status FnEmitter::FlushChain() {
  if (chain_vreg_ != kNoVreg && !chain_stored_) {
    frame_used_ = true;
    MV_RETURN_IF_ERROR(EmitInsn(MakeStore(
        Op::kSt64, kResultReg, kRegSP, static_cast<int32_t>(SpillOffset(chain_vreg_)))));
    chain_stored_ = true;
  }
  return Status::Ok();
}

Status FnEmitter::PrepareBinaryOperands(const Operand& lhs, const Operand& rhs) {
  const bool rhs_chained = rhs.is_vreg() && chain_vreg_ == rhs.vreg;
  const bool lhs_chained = lhs.is_vreg() && chain_vreg_ == lhs.vreg;
  if (lhs_chained) {
    MV_RETURN_IF_ERROR(LoadOperandTo(kScratch1, rhs));
    return Status::Ok();
  }
  if (rhs_chained) {
    MV_RETURN_IF_ERROR(EmitInsn(MakeMovRR(kScratch1, kResultReg)));
    chain_vreg_ = kNoVreg;
    MV_RETURN_IF_ERROR(LoadOperandTo(kResultReg, lhs));
    return Status::Ok();
  }
  MV_RETURN_IF_ERROR(LoadOperandTo(kResultReg, lhs));
  MV_RETURN_IF_ERROR(LoadOperandTo(kScratch1, rhs));
  return Status::Ok();
}

Status FnEmitter::StoreResult(const BasicBlock& bb, size_t index, uint32_t vreg) {
  chain_vreg_ = kNoVreg;
  if (vreg == kNoVreg) {
    return Status::Ok();
  }
  const int uses = use_count_.count(vreg) != 0 ? use_count_.at(vreg) : 0;
  if (uses == 0) {
    return Status::Ok();
  }
  // Single use by the immediately following instruction: keep it in r0.
  bool next_uses = false;
  if (index + 1 < bb.instrs.size()) {
    for (const Operand& arg : bb.instrs[index + 1].args) {
      if (arg.is_vreg() && arg.vreg == vreg) {
        next_uses = true;
        break;
      }
    }
  }
  chain_vreg_ = vreg;
  if (uses == 1 && next_uses) {
    chain_stored_ = false;
    return Status::Ok();
  }
  chain_stored_ = true;
  frame_used_ = true;
  return EmitInsn(MakeStore(Op::kSt64, kResultReg, kRegSP,
                            static_cast<int32_t>(SpillOffset(vreg))));
}

Status FnEmitter::EmitNormalize(uint8_t reg, IrType type) {
  if (!type.is_int() || type.bits >= 64) {
    return Status::Ok();
  }
  const auto shift = static_cast<uint8_t>(64 - type.bits);
  if (type.is_signed) {
    MV_RETURN_IF_ERROR(EmitInsn(MakeShiftI(Op::kShlI, reg, shift)));
    return EmitInsn(MakeShiftI(Op::kSarI, reg, shift));
  }
  if (type.bits < 32) {
    const int32_t mask = static_cast<int32_t>((1u << type.bits) - 1);
    return EmitInsn(MakeAluRI(Op::kAndI, reg, mask));
  }
  MV_RETURN_IF_ERROR(EmitInsn(MakeShiftI(Op::kShlI, reg, shift)));
  return EmitInsn(MakeShiftI(Op::kShrI, reg, shift));
}

Status FnEmitter::EmitJump(uint32_t target_bb) {
  MV_RETURN_IF_ERROR(EmitInsn(MakeJmp(0)));
  fixups_.push_back({Offset() - 4, target_bb});
  return Status::Ok();
}

Status FnEmitter::EmitBranch(Cond cc, uint32_t target_bb) {
  MV_RETURN_IF_ERROR(EmitInsn(MakeJcc(cc, 0)));
  fixups_.push_back({Offset() - 4, target_bb});
  return Status::Ok();
}

Status FnEmitter::EmitEpilogue(const Instr& instr) {
  if (!instr.args.empty()) {
    MV_RETURN_IF_ERROR(LoadOperandTo(kResultReg, instr.args[0]));
  }
  chain_vreg_ = kNoVreg;
  if (frame_size_ > 0) {
    MV_RETURN_IF_ERROR(
        EmitInsn(MakeAluRI(Op::kAddI, kRegSP, static_cast<int32_t>(frame_size_))));
  }
  if (fn_.pvop_convention) {
    for (auto it = std::rbegin(kPvopSavedRegs); it != std::rend(kPvopSavedRegs); ++it) {
      MV_RETURN_IF_ERROR(EmitInsn(MakePop(*it)));
    }
  }
  return EmitInsn(MakeSimple(Op::kRet));
}

Status FnEmitter::EmitCall(const Instr& instr, const BasicBlock& bb, size_t index) {
  MV_RETURN_IF_ERROR(FlushChain());
  chain_vreg_ = kNoVreg;

  const bool indirect = instr.op == IrOp::kCallInd;
  const bool via = instr.op == IrOp::kCallVia;
  const size_t first_arg = indirect ? 1 : 0;
  const size_t num_args = instr.args.size() - first_arg;
  if (num_args > kMaxRegArgs) {
    return Status::Unimplemented(fn_.name + ": more than 6 call arguments");
  }
  if (indirect) {
    MV_RETURN_IF_ERROR(LoadOperandTo(kTargetReg, instr.args[0]));
  }
  for (size_t i = 0; i < num_args; ++i) {
    MV_RETURN_IF_ERROR(
        LoadOperandTo(static_cast<uint8_t>(i), instr.args[first_arg + i]));
  }

  // Patchable call sites must sit with all five bytes inside one naturally
  // aligned 8-byte word (offset % 8 <= 3), so the wait-free live protocol can
  // retarget them with a single atomic word store. Functions start 16-aligned
  // (GenerateObject), so padding here keeps the invariant in the final image.
  const Function* direct_callee =
      (!via && !indirect) ? module_.FindFunction(instr.callee) : nullptr;
  const bool patchable =
      via || (direct_callee != nullptr && direct_callee->mv.is_multiverse &&
              !direct_callee->mv.is_variant());
  if (patchable) {
    while (Offset() % 8 > 3) {
      MV_RETURN_IF_ERROR(EmitInsn(MakeSimple(Op::kNop)));
    }
  }

  const uint64_t call_offset = Offset();
  if (via) {
    // Memory-indirect call through the function-pointer global: one 5-byte
    // patchable instruction, exactly like the kernel's pvop call sites.
    const GlobalVar& g = module_.globals[instr.global];
    MV_RETURN_IF_ERROR(EmitInsn(MakeCallM(0)));
    Reloc reloc;
    reloc.section = text_sec_;
    reloc.offset = call_offset + 1;
    reloc.type = RelocType::kAbs32;
    reloc.symbol = g.name;
    obj_->relocs.push_back(std::move(reloc));
    CallsiteRecord record;
    record.text_offset = call_offset;
    record.via_global = instr.global;
    record.indirect = true;
    record.callee = g.name;
    if (g.is_fnptr_switch) {
      info_->mv_callsites.push_back(record);
    } else {
      info_->pv_callsites.push_back(record);
    }
  } else if (indirect) {
    MV_RETURN_IF_ERROR(EmitInsn(MakeCallR(kTargetReg)));
  } else {
    MV_RETURN_IF_ERROR(EmitInsn(MakeCall(0)));
    Reloc reloc;
    reloc.section = text_sec_;
    reloc.offset = call_offset + 1;
    reloc.type = RelocType::kRel32;
    reloc.symbol = instr.callee;
    obj_->relocs.push_back(std::move(reloc));

    if (patchable) {
      CallsiteRecord record;
      record.text_offset = call_offset;
      record.callee = instr.callee;
      record.indirect = false;
      info_->mv_callsites.push_back(record);
    }
  }
  return StoreResult(bb, index, instr.result);
}

Status FnEmitter::EmitInstr(const BasicBlock& bb, size_t index, bool* fused_next) {
  const Instr& instr = bb.instrs[index];
  *fused_next = false;

  switch (instr.op) {
    case IrOp::kLoadSlot:
      frame_used_ = true;
      MV_RETURN_IF_ERROR(EmitInsn(MakeLoad(Op::kLd64, kResultReg, kRegSP,
                                           static_cast<int32_t>(SlotOffset(instr.slot)))));
      return StoreResult(bb, index, instr.result);
    case IrOp::kStoreSlot:
      frame_used_ = true;
      MV_RETURN_IF_ERROR(LoadOperandTo(kResultReg, instr.args[0]));
      chain_vreg_ = kNoVreg;
      return EmitInsn(MakeStore(Op::kSt64, kResultReg, kRegSP,
                                static_cast<int32_t>(SlotOffset(instr.slot))));
    case IrOp::kSlotAddr:
      frame_used_ = true;
      MV_RETURN_IF_ERROR(EmitInsn(MakeMovRR(kResultReg, kRegSP)));
      MV_RETURN_IF_ERROR(EmitInsn(
          MakeAluRI(Op::kAddI, kResultReg, static_cast<int32_t>(SlotOffset(instr.slot)))));
      return StoreResult(bb, index, instr.result);

    case IrOp::kLoadGlobal: {
      const GlobalVar& g = module_.globals[instr.global];
      MV_RETURN_IF_ERROR(EmitInsn(MakeLdg(kResultReg, IrTypeToGWidth(instr.type), 0)));
      Reloc reloc;
      reloc.section = text_sec_;
      reloc.offset = Offset() - 4;
      reloc.type = RelocType::kAbs32;
      reloc.symbol = g.name;
      obj_->relocs.push_back(std::move(reloc));
      return StoreResult(bb, index, instr.result);
    }
    case IrOp::kStoreGlobal: {
      const GlobalVar& g = module_.globals[instr.global];
      MV_RETURN_IF_ERROR(LoadOperandTo(kResultReg, instr.args[0]));
      chain_vreg_ = kNoVreg;
      MV_RETURN_IF_ERROR(EmitInsn(MakeStg(kResultReg, IrTypeToGWidth(instr.type), 0)));
      Reloc reloc;
      reloc.section = text_sec_;
      reloc.offset = Offset() - 4;
      reloc.type = RelocType::kAbs32;
      reloc.symbol = g.name;
      obj_->relocs.push_back(std::move(reloc));
      return Status::Ok();
    }
    case IrOp::kGlobalAddr:
    case IrOp::kFuncAddr: {
      MV_RETURN_IF_ERROR(EmitInsn(MakeMovRI(kResultReg, 0)));
      Reloc reloc;
      reloc.section = text_sec_;
      reloc.offset = Offset() - 8;
      reloc.type = RelocType::kAbs64;
      reloc.symbol = instr.op == IrOp::kGlobalAddr ? module_.globals[instr.global].name
                                                   : instr.callee;
      obj_->relocs.push_back(std::move(reloc));
      return StoreResult(bb, index, instr.result);
    }

    case IrOp::kLoad: {
      MV_RETURN_IF_ERROR(LoadOperandTo(kScratch1, instr.args[0]));
      chain_vreg_ = kNoVreg;
      MV_RETURN_IF_ERROR(
          EmitInsn(MakeLoad(LoadOpForType(instr.type), kResultReg, kScratch1, 0)));
      return StoreResult(bb, index, instr.result);
    }
    case IrOp::kStore: {
      // args[0] = pointer, args[1] = value.
      MV_RETURN_IF_ERROR(PrepareBinaryOperands(instr.args[1], instr.args[0]));
      chain_vreg_ = kNoVreg;
      // value in r0, pointer in r1.
      return EmitInsn(MakeStore(StoreOpForType(instr.type), kResultReg, kScratch1, 0));
    }

    case IrOp::kBin: {
      const Operand& rhs = instr.args[1];
      std::optional<Op> imm_op = BinToImmOp(instr.bin);
      const bool is_shift = instr.bin == BinKind::kShl || instr.bin == BinKind::kLShr ||
                            instr.bin == BinKind::kAShr;
      if (rhs.is_const() && imm_op.has_value() &&
          (is_shift ? (rhs.imm >= 0 && rhs.imm <= 63) : FitsImm32(rhs.imm))) {
        MV_RETURN_IF_ERROR(LoadOperandTo(kResultReg, instr.args[0]));
        chain_vreg_ = kNoVreg;
        if (is_shift) {
          MV_RETURN_IF_ERROR(EmitInsn(
              MakeShiftI(*imm_op, kResultReg, static_cast<uint8_t>(rhs.imm))));
        } else {
          MV_RETURN_IF_ERROR(EmitInsn(
              MakeAluRI(*imm_op, kResultReg, static_cast<int32_t>(rhs.imm))));
        }
      } else {
        MV_RETURN_IF_ERROR(PrepareBinaryOperands(instr.args[0], rhs));
        chain_vreg_ = kNoVreg;
        MV_RETURN_IF_ERROR(
            EmitInsn(MakeAluRR(BinToOp(instr.bin), kResultReg, kScratch1)));
      }
      // Wrap-around semantics for narrow types (see DESIGN.md).
      switch (instr.bin) {
        case BinKind::kAdd:
        case BinKind::kSub:
        case BinKind::kMul:
        case BinKind::kShl:
          MV_RETURN_IF_ERROR(EmitNormalize(kResultReg, instr.type));
          break;
        default:
          break;
      }
      return StoreResult(bb, index, instr.result);
    }

    case IrOp::kCmp: {
      // Fuse cmp + condbr when the comparison feeds only the branch.
      const bool can_fuse =
          index + 1 < bb.instrs.size() && bb.instrs[index + 1].op == IrOp::kCondBr &&
          bb.instrs[index + 1].args[0].is_vreg() &&
          bb.instrs[index + 1].args[0].vreg == instr.result &&
          use_count_.at(instr.result) == 1;
      const Operand& rhs = instr.args[1];
      if (rhs.is_const() && FitsImm32(rhs.imm)) {
        MV_RETURN_IF_ERROR(LoadOperandTo(kResultReg, instr.args[0]));
        chain_vreg_ = kNoVreg;
        MV_RETURN_IF_ERROR(
            EmitInsn(MakeCmpI(kResultReg, static_cast<int32_t>(rhs.imm))));
      } else {
        MV_RETURN_IF_ERROR(PrepareBinaryOperands(instr.args[0], rhs));
        chain_vreg_ = kNoVreg;
        MV_RETURN_IF_ERROR(EmitInsn(MakeCmp(kResultReg, kScratch1)));
      }
      if (can_fuse) {
        *fused_next = true;
        const Instr& br = bb.instrs[index + 1];
        const Cond cc = PredToCond(instr.pred);
        const uint32_t next_bb = bb.id + 1;
        if (br.bb_else == next_bb) {
          return EmitBranch(cc, br.bb_then);
        }
        if (br.bb_then == next_bb) {
          return EmitBranch(NegateCond(cc), br.bb_else);
        }
        MV_RETURN_IF_ERROR(EmitBranch(cc, br.bb_then));
        return EmitJump(br.bb_else);
      }
      MV_RETURN_IF_ERROR(EmitInsn(MakeSetCC(PredToCond(instr.pred), kResultReg)));
      return StoreResult(bb, index, instr.result);
    }

    case IrOp::kNot:
    case IrOp::kNeg:
      MV_RETURN_IF_ERROR(LoadOperandTo(kResultReg, instr.args[0]));
      chain_vreg_ = kNoVreg;
      MV_RETURN_IF_ERROR(EmitInsn(
          MakeUnary(instr.op == IrOp::kNot ? Op::kNot : Op::kNeg, kResultReg)));
      MV_RETURN_IF_ERROR(EmitNormalize(kResultReg, instr.type));
      return StoreResult(bb, index, instr.result);

    case IrOp::kTrunc:
      MV_RETURN_IF_ERROR(LoadOperandTo(kResultReg, instr.args[0]));
      chain_vreg_ = kNoVreg;
      MV_RETURN_IF_ERROR(EmitNormalize(kResultReg, instr.type));
      return StoreResult(bb, index, instr.result);

    case IrOp::kSext: {
      MV_RETURN_IF_ERROR(LoadOperandTo(kResultReg, instr.args[0]));
      chain_vreg_ = kNoVreg;
      const auto shift = static_cast<uint8_t>(64 - instr.imm);
      MV_RETURN_IF_ERROR(EmitInsn(MakeShiftI(Op::kShlI, kResultReg, shift)));
      MV_RETURN_IF_ERROR(EmitInsn(MakeShiftI(Op::kSarI, kResultReg, shift)));
      return StoreResult(bb, index, instr.result);
    }

    case IrOp::kCall:
    case IrOp::kCallInd:
    case IrOp::kCallVia:
      return EmitCall(instr, bb, index);

    case IrOp::kSti:
      chain_vreg_ = kNoVreg;
      return EmitInsn(MakeSimple(Op::kSti));
    case IrOp::kCli:
      chain_vreg_ = kNoVreg;
      return EmitInsn(MakeSimple(Op::kCli));
    case IrOp::kPause:
      chain_vreg_ = kNoVreg;
      return EmitInsn(MakeSimple(Op::kPause));
    case IrOp::kFence:
      chain_vreg_ = kNoVreg;
      return EmitInsn(MakeSimple(Op::kFence));
    case IrOp::kHlt:
      chain_vreg_ = kNoVreg;
      return EmitInsn(MakeSimple(Op::kHlt));
    case IrOp::kXchg:
      // value in r0, pointer in r1; XCHG r0, [r1] leaves the old value in r0.
      MV_RETURN_IF_ERROR(PrepareBinaryOperands(instr.args[1], instr.args[0]));
      chain_vreg_ = kNoVreg;
      MV_RETURN_IF_ERROR(EmitInsn(MakeAluRR(Op::kXchg, kResultReg, kScratch1)));
      return StoreResult(bb, index, instr.result);
    case IrOp::kRdtsc:
      chain_vreg_ = kNoVreg;
      MV_RETURN_IF_ERROR(EmitInsn(MakeRdtsc(kResultReg)));
      return StoreResult(bb, index, instr.result);
    case IrOp::kHypercall:
      chain_vreg_ = kNoVreg;
      return EmitInsn(MakeHypercall(static_cast<uint8_t>(instr.imm)));
    case IrOp::kVmCall:
      if (!instr.args.empty()) {
        MV_RETURN_IF_ERROR(LoadOperandTo(kResultReg, instr.args[0]));
      }
      chain_vreg_ = kNoVreg;
      MV_RETURN_IF_ERROR(EmitInsn(MakeVmCall(static_cast<uint8_t>(instr.imm))));
      return StoreResult(bb, index, instr.result);

    case IrOp::kBr: {
      chain_vreg_ = kNoVreg;
      if (instr.bb_then == bb.id + 1) {
        return Status::Ok();  // fallthrough
      }
      return EmitJump(instr.bb_then);
    }
    case IrOp::kCondBr: {
      MV_RETURN_IF_ERROR(LoadOperandTo(kResultReg, instr.args[0]));
      chain_vreg_ = kNoVreg;
      MV_RETURN_IF_ERROR(EmitInsn(MakeCmpI(kResultReg, 0)));
      const uint32_t next_bb = bb.id + 1;
      if (instr.bb_else == next_bb) {
        return EmitBranch(Cond::kNe, instr.bb_then);
      }
      if (instr.bb_then == next_bb) {
        return EmitBranch(Cond::kEq, instr.bb_else);
      }
      MV_RETURN_IF_ERROR(EmitBranch(Cond::kNe, instr.bb_then));
      return EmitJump(instr.bb_else);
    }
    case IrOp::kRet:
      return EmitEpilogue(instr);
  }
  return Status::Internal("unhandled IR op");
}

Status FnEmitter::EmitBlock(const BasicBlock& bb) {
  block_offsets_[bb.id] = Offset();
  chain_vreg_ = kNoVreg;
  use_count_.clear();
  for (const Instr& instr : bb.instrs) {
    for (const Operand& arg : instr.args) {
      if (arg.is_vreg()) {
        ++use_count_[arg.vreg];
      }
    }
  }
  for (size_t i = 0; i < bb.instrs.size(); ++i) {
    bool fused = false;
    MV_RETURN_IF_ERROR(EmitInstr(bb, i, &fused));
    if (fused) {
      ++i;
    }
  }
  return Status::Ok();
}

Status FnEmitter::Emit() {
  const uint64_t fn_start = Offset();
  obj_->AddSymbol(fn_.name, text_sec_, fn_start);
  if (fn_.param_types.size() > kMaxRegArgs) {
    return Status::Unimplemented(fn_.name + ": more than 6 parameters");
  }

  frame_size_ = 8 * (fn_.slots.size() + fn_.next_vreg);
  frame_size_ = (frame_size_ + 15) & ~UINT64_C(15);

  // First pass with a pessimistic frame. If emission never touched the
  // frame, roll back and re-emit frameless — this is what makes specialized
  // one-instruction variants (cli-only spinlocks, sti/cli pvops) eligible
  // for the runtime's call-site inlining and keeps leaf calls cheap.
  const size_t relocs_start = obj_->relocs.size();
  const size_t mv_sites_start = info_->mv_callsites.size();
  const size_t pv_sites_start = info_->pv_callsites.size();
  MV_RETURN_IF_ERROR(EmitOnce(fn_start));
  if (!frame_used_ && frame_size_ > 0) {
    Text().resize(fn_start);
    obj_->relocs.resize(relocs_start);
    info_->mv_callsites.resize(mv_sites_start);
    info_->pv_callsites.resize(pv_sites_start);
    frame_size_ = 0;
    MV_RETURN_IF_ERROR(EmitOnce(fn_start));
  }

  info_->function_sizes[fn_.name] = Offset() - fn_start;
  return Status::Ok();
}

Status FnEmitter::EmitOnce(uint64_t fn_start) {
  (void)fn_start;
  block_offsets_.clear();
  fixups_.clear();
  chain_vreg_ = kNoVreg;
  chain_stored_ = false;
  frame_used_ = false;

  if (fn_.pvop_convention) {
    for (uint8_t reg : kPvopSavedRegs) {
      MV_RETURN_IF_ERROR(EmitInsn(MakePush(reg)));
    }
  }
  if (frame_size_ > 0) {
    MV_RETURN_IF_ERROR(
        EmitInsn(MakeAluRI(Op::kSubI, kRegSP, static_cast<int32_t>(frame_size_))));
    for (size_t i = 0; i < fn_.param_types.size(); ++i) {
      MV_RETURN_IF_ERROR(EmitInsn(MakeStore(Op::kSt64, static_cast<uint8_t>(i), kRegSP,
                                            static_cast<int32_t>(SlotOffset(
                                                static_cast<uint32_t>(i))))));
    }
  }

  for (const BasicBlock& bb : fn_.blocks) {
    MV_RETURN_IF_ERROR(EmitBlock(bb));
  }

  // Patch intra-function jump targets.
  for (const Fixup& fixup : fixups_) {
    auto it = block_offsets_.find(fixup.bb);
    if (it == block_offsets_.end()) {
      return Status::Internal(fn_.name + ": fixup to unknown block");
    }
    const int64_t rel =
        static_cast<int64_t>(it->second) - static_cast<int64_t>(fixup.field_offset + 4);
    const auto value = static_cast<int32_t>(rel);
    std::memcpy(Text().data() + fixup.field_offset, &value, 4);
  }
  return Status::Ok();
}

}  // namespace

Result<CodegenInfo> GenerateObject(const Module& module, ObjectFile* obj) {
  CodegenInfo info;
  const int text_sec = obj->FindOrAddSection(".text", /*is_code=*/true);
  obj->sections[static_cast<size_t>(text_sec)].align = 16;
  const int data_sec = obj->FindOrAddSection(".data");
  const int rodata_sec = obj->FindOrAddSection(".rodata");

  // --- Functions. ---
  for (const Function& fn : module.functions) {
    if (fn.is_extern) {
      continue;
    }
    // Pad to 16-byte boundaries with NOPs so that prologue patching (which
    // saves/overwrites the first 5 bytes, paper §4) never crosses into a
    // neighbouring function, even for 1-byte bodies.
    std::vector<uint8_t>& text = obj->sections[static_cast<size_t>(text_sec)].data;
    while (text.size() % 16 != 0) {
      text.push_back(static_cast<uint8_t>(Op::kNop));
    }
    const uint64_t fn_start = text.size();
    FnEmitter emitter(module, fn, obj, text_sec, &info);
    MV_RETURN_IF_ERROR(emitter.Emit());
    // Guarantee ≥ 8 bytes of patchable space per function.
    while (text.size() - fn_start < 8) {
      text.push_back(static_cast<uint8_t>(Op::kNop));
    }
  }

  // --- Globals. Constants (string literals) go to the read-only segment. ---
  for (size_t gi = 0; gi < module.globals.size(); ++gi) {
    const GlobalVar& g = module.globals[gi];
    if (g.is_extern) {
      continue;
    }
    const int target_sec = g.is_const ? rodata_sec : data_sec;
    std::vector<uint8_t>& data = obj->sections[static_cast<size_t>(target_sec)].data;
    const uint32_t elem_size = static_cast<uint32_t>(g.type.byte_size());
    const uint32_t align = elem_size == 0 ? 8 : elem_size;
    while (data.size() % align != 0) {
      data.push_back(0);
    }
    const uint64_t offset = data.size();
    obj->AddSymbol(g.name, target_sec, offset);
    data.resize(offset + g.byte_size(), 0);
    for (size_t i = 0; i < g.init.size() && i < g.count; ++i) {
      std::memcpy(data.data() + offset + i * elem_size, &g.init[i], elem_size);
    }
    if (!g.init_symbol.empty()) {
      Reloc reloc;
      reloc.section = target_sec;
      reloc.offset = offset;
      reloc.type = RelocType::kAbs64;
      reloc.symbol = g.init_symbol;
      obj->relocs.push_back(std::move(reloc));
    }
  }

  return info;
}

}  // namespace mv

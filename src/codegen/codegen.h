// MVISA code generation from mvir.
//
// The backend is deliberately simple (slot-backed temporaries with a
// result-chaining peephole and compare/branch fusion) but plays the two roles
// the paper assigns to the compiler backend:
//  * it places a "label exactly at the emitted call instruction" for every
//    call to a multiversed function and every indirect call through an
//    attributed function pointer, producing the call-site records the
//    runtime patches (paper §3, Figure 2);
//  * it emits all functions — generic and specialized variants — with
//    identical conventions, so a variant can be installed at any recorded
//    call site by rewriting the rel32 of the 5-byte CALL.
#ifndef MULTIVERSE_SRC_CODEGEN_CODEGEN_H_
#define MULTIVERSE_SRC_CODEGEN_CODEGEN_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/mvir/ir.h"
#include "src/obj/object.h"
#include "src/support/status.h"

namespace mv {

// One recorded call site (offset relative to the object's .text section).
struct CallsiteRecord {
  uint64_t text_offset = 0;      // offset of the CALL/CALLR instruction
  std::string callee;            // direct calls: the (generic) callee symbol
  uint32_t via_global = kNoIndex;  // indirect calls through a fn-ptr switch
  bool indirect = false;
};

// Facts the descriptor emitter (src/core) needs beyond the object itself.
struct CodegenInfo {
  std::vector<CallsiteRecord> mv_callsites;  // calls to multiversed functions
  std::vector<CallsiteRecord> pv_callsites;  // all other indirect calls through
                                             // named fn-ptr globals (baseline)
  // function name -> body size in bytes (used in size accounting tests).
  std::map<std::string, uint64_t> function_sizes;
};

// Generates .text and .data (with symbols and relocations) for `module` into
// `obj`. Functions and globals marked extern produce undefined symbols only.
Result<CodegenInfo> GenerateObject(const Module& module, ObjectFile* obj);

}  // namespace mv

#endif  // MULTIVERSE_SRC_CODEGEN_CODEGEN_H_

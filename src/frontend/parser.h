// Recursive-descent parser for mvc.
#ifndef MULTIVERSE_SRC_FRONTEND_PARSER_H_
#define MULTIVERSE_SRC_FRONTEND_PARSER_H_

#include <vector>

#include "src/frontend/ast.h"
#include "src/frontend/token.h"
#include "src/support/diagnostics.h"

namespace mv {

class Parser {
 public:
  Parser(std::vector<Token> tokens, DiagnosticSink* diag);

  // Parses a whole translation unit. On syntax errors, diagnostics are
  // recorded and a best-effort partial AST is returned; callers must check
  // diag->has_errors().
  TranslationUnit ParseUnit();

 private:
  const Token& Peek(int ahead = 0) const;
  const Token& Advance();
  bool Check(Tok kind) const { return Peek().kind == kind; }
  bool Match(Tok kind);
  const Token* Expect(Tok kind, const char* context);
  void SyncToSemi();

  bool AtTypeStart() const;
  MvAttribute ParseAttribute();
  TypeSpec ParseTypeSpec();
  void ParseEnumDecl(TranslationUnit* unit);
  void ParseTopLevelDecl(TranslationUnit* unit);
  void ParseFunctionRest(TranslationUnit* unit, TypeSpec ret, std::string name,
                         MvAttribute attr, bool is_extern, SourceLoc loc);
  void ParseGlobalRest(TranslationUnit* unit, TypeSpec type, std::string name,
                       MvAttribute attr, bool is_extern, SourceLoc loc);

  StmtPtr ParseStmt();
  StmtPtr ParseCompound();
  StmtPtr ParseLocalDecl();

  ExprPtr ParseExpr();          // comma-free full expression (assignment level)
  ExprPtr ParseAssign();
  ExprPtr ParseCond();
  ExprPtr ParseBinary(int min_prec);
  ExprPtr ParseUnary();
  ExprPtr ParsePostfix();
  ExprPtr ParsePrimary();

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  DiagnosticSink* diag_;
};

}  // namespace mv

#endif  // MULTIVERSE_SRC_FRONTEND_PARSER_H_

// Hand-written lexer for mvc.
#ifndef MULTIVERSE_SRC_FRONTEND_LEXER_H_
#define MULTIVERSE_SRC_FRONTEND_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/frontend/token.h"
#include "src/support/diagnostics.h"

namespace mv {

class Lexer {
 public:
  Lexer(std::string_view source, DiagnosticSink* diag);

  // Tokenizes the whole buffer; the last token is always kEof.
  std::vector<Token> Tokenize();

 private:
  Token Next();
  char Peek(int ahead = 0) const;
  char Advance();
  bool Match(char expected);
  void SkipWhitespaceAndComments();
  Token LexNumber();
  Token LexIdent();
  Token LexString();
  Token LexCharLit();
  Token Make(Tok kind);
  SourceLoc Loc() const { return {line_, column_}; }

  std::string_view source_;
  DiagnosticSink* diag_;
  size_t pos_ = 0;
  uint32_t line_ = 1;
  uint32_t column_ = 1;
  SourceLoc token_start_;
};

}  // namespace mv

#endif  // MULTIVERSE_SRC_FRONTEND_LEXER_H_

// AST -> mvir lowering with integrated semantic analysis.
#include <map>
#include <optional>
#include <vector>

#include "src/frontend/ast.h"
#include "src/frontend/ctype.h"
#include "src/frontend/frontend.h"
#include "src/frontend/lexer.h"
#include "src/frontend/parser.h"
#include "src/mvir/builder.h"
#include "src/support/str.h"

namespace mv {

// Normalization helper shared with Convert(); mirrors opt/NormalizeValue but
// works on a CType.
int64_t NormalizeValueForType(int64_t value, const CType& type);

namespace {

class Lowerer {
 public:
  Lowerer(const CompileOptions& options, DiagnosticSink* diag)
      : options_(options), diag_(diag) {}

  Result<Module> Lower(const TranslationUnit& unit, std::string module_name);

 private:
  // An rvalue: an operand plus its frontend type.
  struct RV {
    Operand op;
    int type = 0;
  };

  struct LV {
    enum class Kind : uint8_t { kNone, kSlot, kGlobal, kPtr };
    Kind kind = Kind::kNone;
    uint32_t index = 0;   // slot or global index
    Operand ptr;          // kPtr
    int type = 0;         // CType of the storage
  };

  struct EnumInfo {
    int type = 0;  // CType index
    std::vector<std::pair<std::string, int64_t>> items;
  };

  struct FnInfo {
    int ret = 0;
    std::vector<int> params;
  };

  struct GlobalInfo {
    uint32_t index = 0;
    int type = 0;        // element CType
    bool is_array = false;
  };

  // --- declarations ---
  void DeclareEnum(const EnumDecl& decl);
  void DeclareGlobal(const GlobalDecl& decl);
  void DeclareFunction(const FunctionDecl& decl);
  void LowerFunctionBody(const FunctionDecl& decl);

  int ResolveType(const TypeSpec& spec, SourceLoc loc);
  std::optional<int64_t> EvalConst(const Expr& expr);

  // --- statements ---
  void LowerStmt(const Stmt& stmt);
  void LowerIf(const Stmt& stmt);
  void LowerWhile(const Stmt& stmt);
  void LowerDoWhile(const Stmt& stmt);
  void LowerFor(const Stmt& stmt);
  void LowerLocalDecl(const Stmt& stmt);

  // --- expressions ---
  RV LowerExpr(const Expr& expr);
  LV LowerLValue(const Expr& expr);
  RV LoadLV(const LV& lv, SourceLoc loc);
  void StoreLV(const LV& lv, RV value, SourceLoc loc);
  RV Convert(RV value, int to_type, SourceLoc loc);
  RV LowerBinary(Tok op, RV lhs, RV rhs, SourceLoc loc);
  RV LowerShortCircuit(const Expr& expr);
  RV LowerCondExpr(const Expr& expr);
  RV LowerCall(const Expr& expr);
  RV LowerBuiltin(const Expr& expr);
  RV LowerIncDec(const Expr& expr);
  RV LowerAssign(const Expr& expr);
  LV IndexToLValue(const Expr& expr);

  int CommonType(int a, int b) const;
  int Promote(int t) const;

  // vregs are block-local (see mvir/ir.h); lowering an expression that
  // contains ?:, && or || creates new basic blocks, invalidating any vreg
  // operand the caller is still holding. SpillAcross stores such an operand
  // to a fresh temp slot before the hazardous expression is lowered;
  // ReloadSpilled brings it back in whatever block lowering ended up in.
  static bool ExprMayBranch(const Expr& expr);
  std::optional<uint32_t> SpillAcross(const Expr& next, RV* value) {
    if (!value->op.is_vreg() || !ExprMayBranch(next)) {
      return std::nullopt;
    }
    const uint32_t slot = fn_->AddSlot("$spill", value->op.type);
    b_->StoreSlot(slot, value->op);
    return slot;
  }
  void ReloadSpilled(const std::optional<uint32_t>& slot, RV* value) {
    if (slot.has_value()) {
      value->op = b_->LoadSlot(*slot);
    }
  }
  std::optional<uint32_t> SpillPtrAcross(const Expr& next, LV* lv) {
    if (lv->kind != LV::Kind::kPtr || !lv->ptr.is_vreg() || !ExprMayBranch(next)) {
      return std::nullopt;
    }
    const uint32_t slot = fn_->AddSlot("$spillp", IrType::Ptr());
    b_->StoreSlot(slot, lv->ptr);
    return slot;
  }
  void ReloadSpilledPtr(const std::optional<uint32_t>& slot, LV* lv) {
    if (slot.has_value()) {
      lv->ptr = b_->LoadSlot(*slot);
    }
  }
  RV ErrorRV() { return RV{Operand::Const(0, IrType::I32()), types_.i32()}; }
  void Error(SourceLoc loc, std::string msg) { diag_->Error(loc, std::move(msg)); }

  BinKind TokToBin(Tok op, bool is_signed) const;
  CmpPred TokToCmp(Tok op, bool is_signed) const;

  // --- scope handling ---
  struct LocalVar {
    uint32_t slot = 0;
    int type = 0;
  };
  void PushScope() { scopes_.emplace_back(); }
  void PopScope() { scopes_.pop_back(); }
  const LocalVar* FindLocal(const std::string& name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      auto found = it->find(name);
      if (found != it->end()) {
        return &found->second;
      }
    }
    return nullptr;
  }

  const CompileOptions& options_;
  DiagnosticSink* diag_;
  TypeTable types_;
  Module module_;

  std::map<std::string, EnumInfo> enums_;
  std::map<std::string, std::pair<int64_t, int>> enum_consts_;  // name -> (value, type)
  std::map<std::string, FnInfo> functions_;
  std::map<std::string, GlobalInfo> globals_;

  Function* fn_ = nullptr;          // current function
  const FnInfo* fn_info_ = nullptr;
  std::unique_ptr<IrBuilder> b_;
  std::vector<std::map<std::string, LocalVar>> scopes_;
  struct LoopCtx {
    uint32_t continue_bb;
    uint32_t break_bb;
  };
  std::vector<LoopCtx> loops_;
  int string_counter_ = 0;
};

// ---------------------------------------------------------------------------
// Types and declarations

bool Lowerer::ExprMayBranch(const Expr& expr) {
  if (expr.kind == ExprKind::kCond) {
    return true;
  }
  if (expr.kind == ExprKind::kBinary &&
      (expr.op == Tok::kAmpAmp || expr.op == Tok::kPipePipe)) {
    return true;
  }
  if (expr.lhs != nullptr && ExprMayBranch(*expr.lhs)) {
    return true;
  }
  if (expr.rhs != nullptr && ExprMayBranch(*expr.rhs)) {
    return true;
  }
  if (expr.third != nullptr && ExprMayBranch(*expr.third)) {
    return true;
  }
  for (const ExprPtr& arg : expr.args) {
    if (arg != nullptr && ExprMayBranch(*arg)) {
      return true;
    }
  }
  return false;
}

int Lowerer::ResolveType(const TypeSpec& spec, SourceLoc loc) {
  if (spec.is_fnptr) {
    FnSig sig;
    sig.ret = ResolveType(*spec.fnptr_ret, loc);
    for (const TypeSpec& param : spec.fnptr_params) {
      sig.params.push_back(ResolveType(param, loc));
    }
    CType t;
    t.kind = CType::Kind::kFnPtr;
    t.bits = 64;
    t.fnsig = types_.InternFnSig(std::move(sig));
    return types_.Intern(t);
  }
  int base = types_.void_type();
  switch (spec.base) {
    case TypeSpec::Base::kVoid:
      base = types_.void_type();
      break;
    case TypeSpec::Base::kBool:
      base = types_.bool_type();
      break;
    case TypeSpec::Base::kChar:
      base = spec.is_unsigned ? types_.u8() : types_.i8();
      break;
    case TypeSpec::Base::kShort:
      base = spec.is_unsigned ? types_.u16() : types_.i16();
      break;
    case TypeSpec::Base::kInt:
      base = spec.is_unsigned ? types_.u32() : types_.i32();
      break;
    case TypeSpec::Base::kLong:
      base = spec.is_unsigned ? types_.u64() : types_.i64();
      break;
    case TypeSpec::Base::kEnum: {
      auto it = enums_.find(spec.enum_name);
      if (it == enums_.end()) {
        Error(loc, StrFormat("unknown enum '%s'", spec.enum_name.c_str()));
      } else {
        base = it->second.type;
      }
      break;
    }
  }
  for (int i = 0; i < spec.pointer_depth; ++i) {
    base = types_.PointerTo(base);
  }
  return base;
}

void Lowerer::DeclareEnum(const EnumDecl& decl) {
  if (enums_.count(decl.name) != 0) {
    Error(decl.loc, StrFormat("redefinition of enum '%s'", decl.name.c_str()));
    return;
  }
  CType t;
  t.kind = CType::Kind::kInt;
  t.bits = 32;
  t.is_signed = true;
  t.enum_id = static_cast<int>(enums_.size());
  const int type = types_.Intern(t);
  EnumInfo info;
  info.type = type;
  info.items = decl.items;
  enums_.emplace(decl.name, std::move(info));
  for (const auto& [item, value] : decl.items) {
    if (!enum_consts_.emplace(item, std::make_pair(value, type)).second) {
      Error(decl.loc, StrFormat("duplicate enumerator '%s'", item.c_str()));
    }
  }
}

std::optional<int64_t> Lowerer::EvalConst(const Expr& expr) {
  switch (expr.kind) {
    case ExprKind::kIntLit:
      return expr.int_value;
    case ExprKind::kIdent: {
      auto it = enum_consts_.find(expr.ident);
      if (it != enum_consts_.end()) {
        return it->second.first;
      }
      auto def = options_.defines.find(expr.ident);
      if (def != options_.defines.end()) {
        return def->second;
      }
      return std::nullopt;
    }
    case ExprKind::kSizeof: {
      // Const-cast away: ResolveType may record diagnostics.
      return types_.ByteSize(
          const_cast<Lowerer*>(this)->ResolveType(expr.cast_type, expr.loc));
    }
    case ExprKind::kUnary: {
      std::optional<int64_t> v = EvalConst(*expr.lhs);
      if (!v.has_value()) {
        return std::nullopt;
      }
      switch (expr.op) {
        case Tok::kMinus: return -*v;
        case Tok::kPlus: return *v;
        case Tok::kTilde: return ~*v;
        case Tok::kBang: return *v == 0 ? 1 : 0;
        default: return std::nullopt;
      }
    }
    case ExprKind::kBinary: {
      std::optional<int64_t> l = EvalConst(*expr.lhs);
      std::optional<int64_t> r = EvalConst(*expr.rhs);
      if (!l.has_value() || !r.has_value()) {
        return std::nullopt;
      }
      switch (expr.op) {
        case Tok::kPlus: return *l + *r;
        case Tok::kMinus: return *l - *r;
        case Tok::kStar: return *l * *r;
        case Tok::kSlash: return *r == 0 ? std::nullopt : std::optional<int64_t>(*l / *r);
        case Tok::kPercent: return *r == 0 ? std::nullopt : std::optional<int64_t>(*l % *r);
        case Tok::kShl: return *l << (*r & 63);
        case Tok::kShr: return *l >> (*r & 63);
        case Tok::kAmp: return *l & *r;
        case Tok::kPipe: return *l | *r;
        case Tok::kCaret: return *l ^ *r;
        default: return std::nullopt;
      }
    }
    case ExprKind::kCast:
      return EvalConst(*expr.lhs);
    default:
      return std::nullopt;
  }
}

void Lowerer::DeclareGlobal(const GlobalDecl& decl) {
  auto existing = globals_.find(decl.name);
  const int type = ResolveType(decl.type, decl.loc);
  const CType& ct = types_.at(type);

  if (existing != globals_.end()) {
    // Re-declaration (e.g. extern after definition or vice versa): merge.
    GlobalVar& g = module_.globals[existing->second.index];
    if (!decl.is_extern && g.is_extern) {
      g.is_extern = false;
    }
    if (decl.attr.present) {
      g.is_multiverse = true;
    }
    return;
  }

  GlobalVar g;
  g.name = decl.name;
  g.type = types_.ToIrType(type);
  g.is_extern = decl.is_extern;

  if (decl.attr.present) {
    g.is_multiverse = true;
    if (ct.kind == CType::Kind::kFnPtr) {
      g.is_fnptr_switch = true;  // paper §4: attributed function pointers
    } else if (ct.kind != CType::Kind::kInt) {
      Error(decl.attr.loc,
            "multiverse configuration switches must have integer, boolean, "
            "enumeration or function-pointer type");
      g.is_multiverse = false;
    } else if (!decl.attr.domain.empty()) {
      g.domain = decl.attr.domain;  // explicit domain (paper §3 extended syntax)
    } else if (ct.enum_id >= 0) {
      // Default policy for enums: all declared enumeration items.
      for (const auto& [name, info] : enums_) {
        if (info.type == type) {
          for (const auto& [item, value] : info.items) {
            g.domain.push_back(value);
          }
        }
      }
    } else {
      g.domain = {0, 1};  // default policy for integers (stdbool semantics)
    }
  }

  if (decl.array_size.has_value()) {
    if (*decl.array_size <= 0) {
      Error(decl.loc, "array size must be positive");
    } else {
      g.count = static_cast<uint32_t>(*decl.array_size);
    }
    if (g.is_multiverse) {
      Error(decl.attr.loc, "arrays cannot be configuration switches");
      g.is_multiverse = false;
    }
  }

  if (decl.has_init_string) {
    if (!decl.array_size.has_value()) {
      g.count = static_cast<uint32_t>(decl.init_string.size() + 1);
    }
    for (char c : decl.init_string) {
      g.init.push_back(static_cast<unsigned char>(c));
    }
    g.init.push_back(0);
  } else if (!decl.init_list.empty()) {
    for (const ExprPtr& e : decl.init_list) {
      std::optional<int64_t> v = EvalConst(*e);
      if (!v.has_value()) {
        Error(e->loc, "array initializers must be constant expressions");
        v = 0;
      }
      g.init.push_back(*v);
    }
    if (!decl.array_size.has_value()) {
      g.count = static_cast<uint32_t>(g.init.size());
    }
  } else if (decl.init != nullptr) {
    if (ct.kind == CType::Kind::kFnPtr && decl.init->kind == ExprKind::kIdent &&
        enum_consts_.count(decl.init->ident) == 0) {
      g.init_symbol = decl.init->ident;
    } else {
      std::optional<int64_t> v = EvalConst(*decl.init);
      if (!v.has_value()) {
        Error(decl.init->loc, "global initializers must be constant expressions");
        v = 0;
      }
      g.init.push_back(*v);
    }
  }

  GlobalInfo info;
  info.index = static_cast<uint32_t>(module_.globals.size());
  info.type = type;
  info.is_array = g.count > 1;
  module_.globals.push_back(std::move(g));
  globals_.emplace(decl.name, info);
}

void Lowerer::DeclareFunction(const FunctionDecl& decl) {
  FnInfo info;
  info.ret = ResolveType(decl.return_type, decl.loc);
  for (const ParamDecl& p : decl.params) {
    info.params.push_back(ResolveType(p.type, p.loc));
  }
  auto existing = functions_.find(decl.name);
  if (existing != functions_.end()) {
    if (existing->second.ret != info.ret || existing->second.params != info.params) {
      Error(decl.loc,
            StrFormat("conflicting declaration of function '%s'", decl.name.c_str()));
    }
    Function* fn = module_.FindFunction(decl.name);
    if (fn != nullptr) {
      if (decl.attr.present) {
        fn->mv.is_multiverse = true;
        fn->no_inline = true;
      }
      if (decl.attr.pvop) {
        fn->pvop_convention = true;
      }
      if (!decl.is_extern && fn->is_extern && decl.body == nullptr) {
        // Still only a declaration.
      }
    }
    return;
  }
  functions_.emplace(decl.name, info);

  Function fn;
  fn.name = decl.name;
  fn.return_type = types_.ToIrType(info.ret);
  for (int p : info.params) {
    fn.param_types.push_back(types_.ToIrType(p));
  }
  fn.is_extern = decl.body == nullptr;
  if (decl.attr.present) {
    // The multiverse attribute marks the function as a variation point; the
    // generic variant must never be inlined (paper §3, §7.1).
    fn.mv.is_multiverse = true;
    fn.no_inline = true;
    for (const std::string& bind : decl.attr.bind_names) {
      auto git = globals_.find(bind);
      if (git == globals_.end() || !module_.globals[git->second.index].is_multiverse) {
        Error(decl.attr.loc,
              StrFormat("'%s' in the multiverse binding list is not a "
                        "configuration switch",
                        bind.c_str()));
      } else {
        fn.mv.bind_only.push_back(git->second.index);
      }
    }
  }
  fn.pvop_convention = decl.attr.pvop;
  module_.functions.push_back(std::move(fn));
}

// ---------------------------------------------------------------------------
// Conversions and arithmetic

int Lowerer::Promote(int t) const {
  const CType& ct = types_.at(t);
  if (ct.kind == CType::Kind::kInt && ct.bits < 32) {
    return types_.i32();
  }
  return t;
}

int Lowerer::CommonType(int a, int b) const {
  const CType& ca = types_.at(a);
  const CType& cb = types_.at(b);
  if (ca.kind != CType::Kind::kInt || cb.kind != CType::Kind::kInt) {
    // Pointer-ish operands: keep the left type (callers handle ptr math).
    return a;
  }
  const int pa = Promote(a);
  const int pb = Promote(b);
  const CType& ta = types_.at(pa);
  const CType& tb = types_.at(pb);
  if (ta.bits == tb.bits) {
    if (ta.is_signed == tb.is_signed) {
      return pa;
    }
    return ta.is_signed ? pb : pa;  // unsigned wins at equal rank
  }
  return ta.bits > tb.bits ? pa : pb;
}

Lowerer::RV Lowerer::Convert(RV value, int to_type, SourceLoc loc) {
  if (value.type == to_type) {
    return value;
  }
  const CType& from = types_.at(value.type);
  const CType& to = types_.at(to_type);
  if (to.kind == CType::Kind::kVoid) {
    return RV{Operand::None(), to_type};
  }
  if (from.kind == CType::Kind::kVoid) {
    Error(loc, "cannot use a void value");
    return RV{Operand::Const(0, types_.ToIrType(to_type)), to_type};
  }
  // bool targets normalize to 0/1.
  if (to.is_bool && !from.is_bool) {
    Operand norm = b_->Cmp(CmpPred::kNe, value.op,
                           Operand::Const(0, value.op.type));
    Operand trunc = b_->Trunc(norm, types_.ToIrType(to_type));
    return RV{trunc, to_type};
  }
  // Pointer <-> pointer / fnptr / 64-bit int: bit-identical.
  const bool from_ptrish = from.kind != CType::Kind::kInt;
  const bool to_ptrish = to.kind != CType::Kind::kInt;
  if (to_ptrish) {
    Operand op = value.op;
    op.type = IrType::Ptr();
    return RV{op, to_type};
  }
  if (from_ptrish) {
    // ptr -> int: representation is a 64-bit unsigned value; narrow if needed.
    if (to.bits < 64) {
      return RV{b_->Trunc(value.op, types_.ToIrType(to_type)), to_type};
    }
    Operand op = value.op;
    op.type = types_.ToIrType(to_type);
    return RV{op, to_type};
  }
  // int -> int. Registers always hold the normalized (extended) value, so a
  // conversion only needs work when the target is narrower or changes the
  // interpretation of the top bits.
  if (to.bits < 64 && (to.bits < from.bits || to.is_signed != from.is_signed)) {
    if (value.op.is_const()) {
      const int64_t norm = NormalizeValueForType(value.op.imm, to);
      return RV{Operand::Const(norm, types_.ToIrType(to_type)), to_type};
    }
    return RV{b_->Trunc(value.op, types_.ToIrType(to_type)), to_type};
  }
  Operand op = value.op;
  op.type = types_.ToIrType(to_type);
  return RV{op, to_type};
}

BinKind Lowerer::TokToBin(Tok op, bool is_signed) const {
  switch (op) {
    case Tok::kPlus: case Tok::kPlusAssign: return BinKind::kAdd;
    case Tok::kMinus: case Tok::kMinusAssign: return BinKind::kSub;
    case Tok::kStar: case Tok::kStarAssign: return BinKind::kMul;
    case Tok::kSlash: case Tok::kSlashAssign:
      return is_signed ? BinKind::kSDiv : BinKind::kUDiv;
    case Tok::kPercent: case Tok::kPercentAssign:
      return is_signed ? BinKind::kSRem : BinKind::kURem;
    case Tok::kAmp: case Tok::kAmpAssign: return BinKind::kAnd;
    case Tok::kPipe: case Tok::kPipeAssign: return BinKind::kOr;
    case Tok::kCaret: case Tok::kCaretAssign: return BinKind::kXor;
    case Tok::kShl: case Tok::kShlAssign: return BinKind::kShl;
    case Tok::kShr: case Tok::kShrAssign:
      return is_signed ? BinKind::kAShr : BinKind::kLShr;
    default:
      return BinKind::kAdd;
  }
}

CmpPred Lowerer::TokToCmp(Tok op, bool is_signed) const {
  switch (op) {
    case Tok::kEq: return CmpPred::kEq;
    case Tok::kNe: return CmpPred::kNe;
    case Tok::kLt: return is_signed ? CmpPred::kSLt : CmpPred::kULt;
    case Tok::kLe: return is_signed ? CmpPred::kSLe : CmpPred::kULe;
    case Tok::kGt: return is_signed ? CmpPred::kSGt : CmpPred::kUGt;
    case Tok::kGe: return is_signed ? CmpPred::kSGe : CmpPred::kUGe;
    default: return CmpPred::kEq;
  }
}

// ---------------------------------------------------------------------------
// LValues

Lowerer::LV Lowerer::LowerLValue(const Expr& expr) {
  switch (expr.kind) {
    case ExprKind::kIdent: {
      const LocalVar* local = FindLocal(expr.ident);
      if (local != nullptr) {
        LV lv;
        lv.kind = LV::Kind::kSlot;
        lv.index = local->slot;
        lv.type = local->type;
        return lv;
      }
      auto git = globals_.find(expr.ident);
      if (git != globals_.end()) {
        if (git->second.is_array) {
          Error(expr.loc, StrFormat("array '%s' is not assignable", expr.ident.c_str()));
          return LV{};
        }
        LV lv;
        lv.kind = LV::Kind::kGlobal;
        lv.index = git->second.index;
        lv.type = git->second.type;
        return lv;
      }
      Error(expr.loc, StrFormat("unknown variable '%s'", expr.ident.c_str()));
      return LV{};
    }
    case ExprKind::kUnary:
      if (expr.op == Tok::kStar) {
        RV ptr = LowerExpr(*expr.lhs);
        const CType& pt = types_.at(ptr.type);
        if (pt.kind != CType::Kind::kPtr) {
          Error(expr.loc, "cannot dereference a non-pointer");
          return LV{};
        }
        LV lv;
        lv.kind = LV::Kind::kPtr;
        lv.ptr = ptr.op;
        lv.type = pt.pointee;
        return lv;
      }
      Error(expr.loc, "expression is not assignable");
      return LV{};
    case ExprKind::kIndex:
      return IndexToLValue(expr);
    default:
      Error(expr.loc, "expression is not assignable");
      return LV{};
  }
}

Lowerer::LV Lowerer::IndexToLValue(const Expr& expr) {
  RV base = LowerExpr(*expr.lhs);
  const CType& bt = types_.at(base.type);
  if (bt.kind != CType::Kind::kPtr) {
    Error(expr.loc, "subscripted value is not a pointer or array");
    return LV{};
  }
  std::optional<uint32_t> spilled = SpillAcross(*expr.rhs, &base);
  RV index = Convert(LowerExpr(*expr.rhs), types_.i64(), expr.loc);
  ReloadSpilled(spilled, &base);
  const int elem_size = types_.ByteSize(bt.pointee);
  Operand offset = index.op;
  if (elem_size != 1) {
    offset = b_->Bin(BinKind::kMul, offset, Operand::Const(elem_size, IrType::I64()),
                     IrType::I64());
  }
  Operand addr = b_->Bin(BinKind::kAdd, base.op, offset, IrType::Ptr());
  LV lv;
  lv.kind = LV::Kind::kPtr;
  lv.ptr = addr;
  lv.type = bt.pointee;
  return lv;
}

Lowerer::RV Lowerer::LoadLV(const LV& lv, SourceLoc loc) {
  switch (lv.kind) {
    case LV::Kind::kSlot:
      return RV{b_->LoadSlot(lv.index), lv.type};
    case LV::Kind::kGlobal: {
      const GlobalVar& g = module_.globals[lv.index];
      auto def = options_.defines.find(g.name);
      if (def != options_.defines.end()) {
        // Static variability baseline: the value was fixed at build time.
        const int64_t norm = NormalizeValueForType(def->second, types_.at(lv.type));
        return RV{Operand::Const(norm, types_.ToIrType(lv.type)), lv.type};
      }
      return RV{b_->LoadGlobal(lv.index, types_.ToIrType(lv.type)), lv.type};
    }
    case LV::Kind::kPtr:
      return RV{b_->Load(lv.ptr, types_.ToIrType(lv.type)), lv.type};
    case LV::Kind::kNone:
      (void)loc;
      return ErrorRV();
  }
  return ErrorRV();
}

void Lowerer::StoreLV(const LV& lv, RV value, SourceLoc loc) {
  RV converted = Convert(value, lv.type, loc);
  switch (lv.kind) {
    case LV::Kind::kSlot:
      b_->StoreSlot(lv.index, converted.op);
      return;
    case LV::Kind::kGlobal:
      b_->StoreGlobal(lv.index, converted.op, types_.ToIrType(lv.type));
      return;
    case LV::Kind::kPtr:
      b_->Store(lv.ptr, converted.op, types_.ToIrType(lv.type));
      return;
    case LV::Kind::kNone:
      return;
  }
}

// ---------------------------------------------------------------------------
// Expressions

Lowerer::RV Lowerer::LowerExpr(const Expr& expr) {
  switch (expr.kind) {
    case ExprKind::kIntLit: {
      int type = types_.i32();
      if (expr.lit_long || expr.int_value > INT32_MAX || expr.int_value < INT32_MIN) {
        type = expr.lit_unsigned ? types_.u64() : types_.i64();
      } else if (expr.lit_unsigned) {
        type = types_.u32();
      }
      return RV{Operand::Const(expr.int_value, types_.ToIrType(type)), type};
    }
    case ExprKind::kStringLit: {
      GlobalVar g;
      g.name = StrFormat("%s.str.%d", module_.name.c_str(), string_counter_++);
      g.is_const = true;  // string literals live in .rodata
      g.type = IrType::U8();
      g.count = static_cast<uint32_t>(expr.string_value.size() + 1);
      for (char c : expr.string_value) {
        g.init.push_back(static_cast<unsigned char>(c));
      }
      g.init.push_back(0);
      const auto index = static_cast<uint32_t>(module_.globals.size());
      module_.globals.push_back(std::move(g));
      return RV{b_->GlobalAddr(index), types_.PointerTo(types_.u8())};
    }
    case ExprKind::kIdent: {
      // Enumeration constants.
      auto ec = enum_consts_.find(expr.ident);
      if (ec != enum_consts_.end()) {
        return RV{Operand::Const(ec->second.first, types_.ToIrType(ec->second.second)),
                  ec->second.second};
      }
      const LocalVar* local = FindLocal(expr.ident);
      if (local == nullptr) {
        auto git = globals_.find(expr.ident);
        if (git != globals_.end() && git->second.is_array) {
          // Array decays to a pointer to its first element.
          return RV{b_->GlobalAddr(git->second.index), types_.PointerTo(git->second.type)};
        }
        if (git == globals_.end() && functions_.count(expr.ident) != 0) {
          // A function name used as a value: its address.
          const FnInfo& fi = functions_.at(expr.ident);
          FnSig sig;
          sig.ret = fi.ret;
          sig.params = fi.params;
          CType t;
          t.kind = CType::Kind::kFnPtr;
          t.bits = 64;
          t.fnsig = types_.InternFnSig(std::move(sig));
          return RV{b_->FuncAddr(expr.ident), types_.Intern(t)};
        }
      }
      return LoadLV(LowerLValue(expr), expr.loc);
    }
    case ExprKind::kUnary: {
      switch (expr.op) {
        case Tok::kAmp: {
          const Expr& inner = *expr.lhs;
          if (inner.kind == ExprKind::kIdent && FindLocal(inner.ident) == nullptr &&
              globals_.count(inner.ident) == 0 && functions_.count(inner.ident) != 0) {
            return LowerExpr(inner);  // &func == func
          }
          LV lv = LowerLValue(inner);
          switch (lv.kind) {
            case LV::Kind::kSlot: {
              fn_->slots[lv.index].address_taken = true;
              return RV{b_->SlotAddr(lv.index), types_.PointerTo(lv.type)};
            }
            case LV::Kind::kGlobal:
              return RV{b_->GlobalAddr(lv.index), types_.PointerTo(lv.type)};
            case LV::Kind::kPtr:
              return RV{lv.ptr, types_.PointerTo(lv.type)};
            case LV::Kind::kNone:
              return ErrorRV();
          }
          return ErrorRV();
        }
        case Tok::kStar:
          return LoadLV(LowerLValue(expr), expr.loc);
        case Tok::kBang: {
          RV v = LowerExpr(*expr.lhs);
          Operand result =
              b_->Cmp(CmpPred::kEq, v.op, Operand::Const(0, v.op.type));
          return RV{result, types_.i32()};
        }
        case Tok::kTilde: {
          RV v = LowerExpr(*expr.lhs);
          const int t = Promote(v.type);
          v = Convert(v, t, expr.loc);
          return RV{b_->Not(v.op, types_.ToIrType(t)), t};
        }
        case Tok::kMinus: {
          RV v = LowerExpr(*expr.lhs);
          const int t = Promote(v.type);
          v = Convert(v, t, expr.loc);
          return RV{b_->Neg(v.op, types_.ToIrType(t)), t};
        }
        case Tok::kPlus:
          return LowerExpr(*expr.lhs);
        default:
          Error(expr.loc, "unsupported unary operator");
          return ErrorRV();
      }
    }
    case ExprKind::kBinary:
      if (expr.op == Tok::kAmpAmp || expr.op == Tok::kPipePipe) {
        return LowerShortCircuit(expr);
      }
      {
        RV lhs = LowerExpr(*expr.lhs);
        std::optional<uint32_t> spilled = SpillAcross(*expr.rhs, &lhs);
        RV rhs = LowerExpr(*expr.rhs);
        ReloadSpilled(spilled, &lhs);
        return LowerBinary(expr.op, lhs, rhs, expr.loc);
      }
    case ExprKind::kAssign:
      return LowerAssign(expr);
    case ExprKind::kCond:
      return LowerCondExpr(expr);
    case ExprKind::kCall:
      return LowerCall(expr);
    case ExprKind::kIndex:
      return LoadLV(IndexToLValue(expr), expr.loc);
    case ExprKind::kCast: {
      const int to = ResolveType(expr.cast_type, expr.loc);
      RV v = LowerExpr(*expr.lhs);
      if (types_.at(to).kind == CType::Kind::kVoid) {
        return RV{Operand::None(), to};
      }
      return Convert(v, to, expr.loc);
    }
    case ExprKind::kIncDec:
      return LowerIncDec(expr);
    case ExprKind::kSizeof: {
      const int t = ResolveType(expr.cast_type, expr.loc);
      return RV{Operand::Const(types_.ByteSize(t), IrType::U64()), types_.u64()};
    }
  }
  return ErrorRV();
}

Lowerer::RV Lowerer::LowerBinary(Tok op, RV lhs, RV rhs, SourceLoc loc) {
  const CType& lt = types_.at(lhs.type);
  const CType& rt = types_.at(rhs.type);

  // Pointer arithmetic.
  const bool l_ptr = lt.kind == CType::Kind::kPtr;
  const bool r_ptr = rt.kind == CType::Kind::kPtr;
  if ((op == Tok::kPlus || op == Tok::kMinus) && (l_ptr || r_ptr)) {
    if (l_ptr && r_ptr) {
      if (op != Tok::kMinus) {
        Error(loc, "cannot add two pointers");
        return ErrorRV();
      }
      Operand diff = b_->Bin(BinKind::kSub, lhs.op, rhs.op, IrType::I64());
      const int size = types_.ByteSize(lt.pointee);
      if (size > 1) {
        diff = b_->Bin(BinKind::kSDiv, diff, Operand::Const(size, IrType::I64()),
                       IrType::I64());
      }
      return RV{diff, types_.i64()};
    }
    RV ptr = l_ptr ? lhs : rhs;
    RV idx = Convert(l_ptr ? rhs : lhs, types_.i64(), loc);
    const int size = types_.ByteSize(types_.at(ptr.type).pointee);
    Operand scaled = idx.op;
    if (size > 1) {
      scaled = b_->Bin(BinKind::kMul, scaled, Operand::Const(size, IrType::I64()),
                       IrType::I64());
    }
    Operand addr = b_->Bin(op == Tok::kPlus ? BinKind::kAdd : BinKind::kSub,
                           ptr.op, scaled, IrType::Ptr());
    return RV{addr, ptr.type};
  }

  // Comparisons.
  if (op == Tok::kEq || op == Tok::kNe || op == Tok::kLt || op == Tok::kGt ||
      op == Tok::kLe || op == Tok::kGe) {
    if (l_ptr || r_ptr) {
      Operand result = b_->Cmp(TokToCmp(op, /*is_signed=*/false), lhs.op, rhs.op);
      return RV{result, types_.i32()};
    }
    const int common = CommonType(lhs.type, rhs.type);
    RV l = Convert(lhs, common, loc);
    RV r = Convert(rhs, common, loc);
    const bool is_signed = types_.at(common).is_signed;
    return RV{b_->Cmp(TokToCmp(op, is_signed), l.op, r.op), types_.i32()};
  }

  // Ordinary arithmetic.
  const int common = CommonType(lhs.type, rhs.type);
  RV l = Convert(lhs, common, loc);
  RV r = Convert(rhs, common, loc);
  const bool is_signed = types_.at(common).is_signed;
  Operand result =
      b_->Bin(TokToBin(op, is_signed), l.op, r.op, types_.ToIrType(common));
  return RV{result, common};
}

Lowerer::RV Lowerer::LowerShortCircuit(const Expr& expr) {
  const bool is_and = expr.op == Tok::kAmpAmp;
  const uint32_t temp = fn_->AddSlot("$sc", IrType::I32());
  const uint32_t rhs_bb = fn_->AddBlock();
  const uint32_t short_bb = fn_->AddBlock();
  const uint32_t join_bb = fn_->AddBlock();

  RV lhs = LowerExpr(*expr.lhs);
  if (is_and) {
    b_->CondBr(lhs.op, rhs_bb, short_bb);
  } else {
    b_->CondBr(lhs.op, short_bb, rhs_bb);
  }

  b_->SetBlock(rhs_bb);
  RV rhs = LowerExpr(*expr.rhs);
  Operand norm = b_->Cmp(CmpPred::kNe, rhs.op, Operand::Const(0, rhs.op.type));
  b_->StoreSlot(temp, norm);
  b_->Br(join_bb);

  b_->SetBlock(short_bb);
  b_->StoreSlot(temp, Operand::Const(is_and ? 0 : 1, IrType::I32()));
  b_->Br(join_bb);

  b_->SetBlock(join_bb);
  return RV{b_->LoadSlot(temp), types_.i32()};
}

Lowerer::RV Lowerer::LowerCondExpr(const Expr& expr) {
  RV cond = LowerExpr(*expr.lhs);
  const uint32_t then_bb = fn_->AddBlock();
  const uint32_t else_bb = fn_->AddBlock();
  const uint32_t join_bb = fn_->AddBlock();
  b_->CondBr(cond.op, then_bb, else_bb);

  // Lower both arms; each may itself create blocks, so remember where each
  // arm's evaluation *ended* — stores and branches belong there.
  b_->SetBlock(then_bb);
  RV then_v = LowerExpr(*expr.rhs);
  const uint32_t then_end = b_->current_block();
  b_->SetBlock(else_bb);
  RV else_v = LowerExpr(*expr.third);
  const uint32_t else_end = b_->current_block();

  const CType& tt = types_.at(then_v.type);
  int common;
  if (tt.kind == CType::Kind::kVoid) {
    common = types_.void_type();
  } else if (tt.kind != CType::Kind::kInt) {
    common = then_v.type;  // pointer-ish arms: take the then-type
  } else {
    common = CommonType(then_v.type, else_v.type);
  }

  if (common == types_.void_type()) {
    b_->SetBlock(then_end);
    b_->Br(join_bb);
    b_->SetBlock(else_end);
    b_->Br(join_bb);
    b_->SetBlock(join_bb);
    return RV{Operand::None(), common};
  }

  const uint32_t temp = fn_->AddSlot("$cond", types_.ToIrType(common));
  b_->SetBlock(then_end);
  b_->StoreSlot(temp, Convert(then_v, common, expr.loc).op);
  b_->Br(join_bb);
  b_->SetBlock(else_end);
  b_->StoreSlot(temp, Convert(else_v, common, expr.loc).op);
  b_->Br(join_bb);
  b_->SetBlock(join_bb);
  return RV{b_->LoadSlot(temp), common};
}

Lowerer::RV Lowerer::LowerAssign(const Expr& expr) {
  LV lv = LowerLValue(*expr.lhs);
  std::optional<uint32_t> spilled = SpillPtrAcross(*expr.rhs, &lv);
  RV value = LowerExpr(*expr.rhs);
  ReloadSpilledPtr(spilled, &lv);
  if (expr.op != Tok::kAssign) {
    RV current = LoadLV(lv, expr.loc);
    Tok bin_op;
    switch (expr.op) {
      case Tok::kPlusAssign: bin_op = Tok::kPlus; break;
      case Tok::kMinusAssign: bin_op = Tok::kMinus; break;
      case Tok::kStarAssign: bin_op = Tok::kStar; break;
      case Tok::kSlashAssign: bin_op = Tok::kSlash; break;
      case Tok::kPercentAssign: bin_op = Tok::kPercent; break;
      case Tok::kAmpAssign: bin_op = Tok::kAmp; break;
      case Tok::kPipeAssign: bin_op = Tok::kPipe; break;
      case Tok::kCaretAssign: bin_op = Tok::kCaret; break;
      case Tok::kShlAssign: bin_op = Tok::kShl; break;
      case Tok::kShrAssign: bin_op = Tok::kShr; break;
      default: bin_op = Tok::kPlus; break;
    }
    value = LowerBinary(bin_op, current, value, expr.loc);
  }
  RV converted = Convert(value, lv.type, expr.loc);
  StoreLV(lv, converted, expr.loc);
  return converted;
}

Lowerer::RV Lowerer::LowerIncDec(const Expr& expr) {
  LV lv = LowerLValue(*expr.lhs);
  RV old_value = LoadLV(lv, expr.loc);
  const CType& t = types_.at(old_value.type);
  int64_t delta = 1;
  if (t.kind == CType::Kind::kPtr) {
    delta = types_.ByteSize(t.pointee);
  }
  const BinKind op = expr.op == Tok::kPlusPlus ? BinKind::kAdd : BinKind::kSub;
  Operand new_op = b_->Bin(op, old_value.op,
                           Operand::Const(delta, old_value.op.type), old_value.op.type);
  RV new_value{new_op, old_value.type};
  StoreLV(lv, new_value, expr.loc);
  return expr.is_prefix ? new_value : old_value;
}

Lowerer::RV Lowerer::LowerBuiltin(const Expr& expr) {
  const std::string& name = expr.ident;
  auto arg = [&](size_t i) { return LowerExpr(*expr.args[i]); };
  auto require_args = [&](size_t n) {
    if (expr.args.size() != n) {
      Error(expr.loc, StrFormat("%s expects %zu argument(s)", name.c_str(), n));
      return false;
    }
    return true;
  };

  if (name == "__builtin_sti") {
    b_->Sti();
    return RV{Operand::None(), types_.void_type()};
  }
  if (name == "__builtin_cli") {
    b_->Cli();
    return RV{Operand::None(), types_.void_type()};
  }
  if (name == "__builtin_pause") {
    b_->Pause();
    return RV{Operand::None(), types_.void_type()};
  }
  if (name == "__builtin_fence") {
    b_->Fence();
    return RV{Operand::None(), types_.void_type()};
  }
  if (name == "__builtin_halt") {
    b_->Hlt();
    return RV{Operand::None(), types_.void_type()};
  }
  if (name == "__builtin_rdtsc") {
    return RV{b_->Rdtsc(), types_.u64()};
  }
  if (name == "__builtin_xchg") {
    if (!require_args(2)) {
      return ErrorRV();
    }
    RV ptr = arg(0);
    RV value = Convert(arg(1), types_.u32(), expr.loc);
    return RV{b_->Xchg(ptr.op, value.op), types_.u32()};
  }
  if (name == "__builtin_hypercall") {
    if (!require_args(1)) {
      return ErrorRV();
    }
    std::optional<int64_t> code = EvalConst(*expr.args[0]);
    if (!code.has_value()) {
      Error(expr.loc, "__builtin_hypercall requires a constant code");
      return ErrorRV();
    }
    b_->Hypercall(*code);
    return RV{Operand::None(), types_.void_type()};
  }
  if (name == "__builtin_vmcall") {
    if (expr.args.empty() || expr.args.size() > 2) {
      Error(expr.loc, "__builtin_vmcall expects 1 or 2 arguments");
      return ErrorRV();
    }
    std::optional<int64_t> code = EvalConst(*expr.args[0]);
    if (!code.has_value()) {
      Error(expr.loc, "__builtin_vmcall requires a constant code");
      return ErrorRV();
    }
    Operand payload = Operand::None();
    if (expr.args.size() == 2) {
      payload = Convert(arg(1), types_.i64(), expr.loc).op;
    }
    return RV{b_->VmCall(*code, payload), types_.i64()};
  }
  Error(expr.loc, StrFormat("unknown builtin '%s'", name.c_str()));
  return ErrorRV();
}

Lowerer::RV Lowerer::LowerCall(const Expr& expr) {
  if (StartsWith(expr.ident, "__builtin_")) {
    return LowerBuiltin(expr);
  }

  // Indirect call through a function-pointer global or local.
  int fnsig = -1;
  Operand target;
  uint32_t via_global = kNoIndex;
  bool indirect = false;

  bool args_may_branch = false;
  for (const ExprPtr& arg : expr.args) {
    args_may_branch |= ExprMayBranch(*arg);
  }
  const LocalVar* local = FindLocal(expr.ident);
  if (local != nullptr && types_.at(local->type).kind == CType::Kind::kFnPtr) {
    // Defer the target load until after the arguments when they may branch.
    if (!args_may_branch) {
      target = b_->LoadSlot(local->slot);
    }
    fnsig = types_.at(local->type).fnsig;
    indirect = true;
  } else if (local == nullptr) {
    auto git = globals_.find(expr.ident);
    if (git != globals_.end() && types_.at(git->second.type).kind == CType::Kind::kFnPtr) {
      // Calls through named function-pointer globals lower to a single
      // memory-indirect call instruction (x86 `call *mem`) that the code
      // generator records: attributed ones become multiverse call sites
      // (paper §4), the rest feed the paravirt baseline patcher.
      fnsig = types_.at(git->second.type).fnsig;
      via_global = git->second.index;
      indirect = true;
    }
  }

  std::vector<int> param_types;
  int ret_type;
  if (indirect) {
    const FnSig& sig = types_.fnsig(fnsig);
    param_types = sig.params;
    ret_type = sig.ret;
  } else {
    auto fit = functions_.find(expr.ident);
    if (fit == functions_.end()) {
      Error(expr.loc, StrFormat("call to undeclared function '%s'", expr.ident.c_str()));
      return ErrorRV();
    }
    param_types = fit->second.params;
    ret_type = fit->second.ret;
  }

  if (expr.args.size() != param_types.size()) {
    Error(expr.loc, StrFormat("'%s' expects %zu argument(s), got %zu", expr.ident.c_str(),
                              param_types.size(), expr.args.size()));
    return ErrorRV();
  }
  // Later arguments containing ?:/&&/|| invalidate earlier vreg operands;
  // evaluate left-to-right and keep earlier arguments durable where needed.
  bool rest_may_branch = false;
  for (const ExprPtr& arg : expr.args) {
    rest_may_branch |= ExprMayBranch(*arg);
  }
  std::vector<Operand> args;
  std::vector<std::optional<uint32_t>> arg_slots(expr.args.size());
  args.reserve(expr.args.size());
  for (size_t i = 0; i < expr.args.size(); ++i) {
    RV a = Convert(LowerExpr(*expr.args[i]), param_types[i], expr.args[i]->loc);
    if (rest_may_branch && a.op.is_vreg()) {
      const uint32_t slot = fn_->AddSlot("$arg", a.op.type);
      b_->StoreSlot(slot, a.op);
      arg_slots[i] = slot;
    }
    args.push_back(a.op);
  }
  if (rest_may_branch) {
    for (size_t i = 0; i < args.size(); ++i) {
      if (arg_slots[i].has_value()) {
        args[i] = b_->LoadSlot(*arg_slots[i]);
      }
    }
  }

  if (indirect && via_global == kNoIndex && target.is_none()) {
    // Deferred local fn-ptr target load (see above).
    target = b_->LoadSlot(FindLocal(expr.ident)->slot);
  }
  const IrType ir_ret = types_.ToIrType(ret_type);
  Operand result;
  if (!indirect) {
    result = b_->Call(expr.ident, std::move(args), ir_ret);
  } else if (via_global != kNoIndex) {
    result = b_->CallVia(via_global, std::move(args), ir_ret);
  } else {
    result = b_->CallInd(target, std::move(args), ir_ret);
  }
  return RV{result, ret_type};
}

// ---------------------------------------------------------------------------
// Statements

void Lowerer::LowerLocalDecl(const Stmt& stmt) {
  const int type = ResolveType(stmt.decl_type, stmt.loc);
  if (types_.at(type).kind == CType::Kind::kVoid) {
    Error(stmt.loc, "variables cannot have void type");
    return;
  }
  const uint32_t slot = fn_->AddSlot(stmt.decl_name, types_.ToIrType(type));
  if (!scopes_.back().emplace(stmt.decl_name, LocalVar{slot, type}).second) {
    Error(stmt.loc, StrFormat("redefinition of '%s'", stmt.decl_name.c_str()));
  }
  if (stmt.decl_init != nullptr) {
    RV value = Convert(LowerExpr(*stmt.decl_init), type, stmt.loc);
    b_->StoreSlot(slot, value.op);
  }
}

void Lowerer::LowerIf(const Stmt& stmt) {
  RV cond = LowerExpr(*stmt.expr);
  const uint32_t then_bb = fn_->AddBlock();
  const uint32_t else_bb = stmt.else_stmt != nullptr ? fn_->AddBlock() : kNoIndex;
  const uint32_t join_bb = fn_->AddBlock();
  b_->CondBr(cond.op, then_bb, stmt.else_stmt != nullptr ? else_bb : join_bb);

  b_->SetBlock(then_bb);
  PushScope();
  LowerStmt(*stmt.then_stmt);
  PopScope();
  if (!b_->Terminated()) {
    b_->Br(join_bb);
  }

  if (stmt.else_stmt != nullptr) {
    b_->SetBlock(else_bb);
    PushScope();
    LowerStmt(*stmt.else_stmt);
    PopScope();
    if (!b_->Terminated()) {
      b_->Br(join_bb);
    }
  }
  b_->SetBlock(join_bb);
}

void Lowerer::LowerWhile(const Stmt& stmt) {
  const uint32_t cond_bb = fn_->AddBlock();
  const uint32_t body_bb = fn_->AddBlock();
  const uint32_t exit_bb = fn_->AddBlock();
  b_->Br(cond_bb);
  b_->SetBlock(cond_bb);
  RV cond = LowerExpr(*stmt.expr);
  b_->CondBr(cond.op, body_bb, exit_bb);

  loops_.push_back({cond_bb, exit_bb});
  b_->SetBlock(body_bb);
  PushScope();
  LowerStmt(*stmt.then_stmt);
  PopScope();
  if (!b_->Terminated()) {
    b_->Br(cond_bb);
  }
  loops_.pop_back();
  b_->SetBlock(exit_bb);
}

void Lowerer::LowerDoWhile(const Stmt& stmt) {
  const uint32_t body_bb = fn_->AddBlock();
  const uint32_t cond_bb = fn_->AddBlock();
  const uint32_t exit_bb = fn_->AddBlock();
  b_->Br(body_bb);
  loops_.push_back({cond_bb, exit_bb});
  b_->SetBlock(body_bb);
  PushScope();
  LowerStmt(*stmt.then_stmt);
  PopScope();
  if (!b_->Terminated()) {
    b_->Br(cond_bb);
  }
  loops_.pop_back();
  b_->SetBlock(cond_bb);
  RV cond = LowerExpr(*stmt.expr);
  b_->CondBr(cond.op, body_bb, exit_bb);
  b_->SetBlock(exit_bb);
}

void Lowerer::LowerFor(const Stmt& stmt) {
  PushScope();
  if (stmt.init_stmt != nullptr) {
    LowerStmt(*stmt.init_stmt);
  }
  const uint32_t cond_bb = fn_->AddBlock();
  const uint32_t body_bb = fn_->AddBlock();
  const uint32_t step_bb = fn_->AddBlock();
  const uint32_t exit_bb = fn_->AddBlock();
  b_->Br(cond_bb);
  b_->SetBlock(cond_bb);
  if (stmt.expr != nullptr) {
    RV cond = LowerExpr(*stmt.expr);
    b_->CondBr(cond.op, body_bb, exit_bb);
  } else {
    b_->Br(body_bb);
  }

  loops_.push_back({step_bb, exit_bb});
  b_->SetBlock(body_bb);
  PushScope();
  LowerStmt(*stmt.then_stmt);
  PopScope();
  if (!b_->Terminated()) {
    b_->Br(step_bb);
  }
  loops_.pop_back();

  b_->SetBlock(step_bb);
  if (stmt.step_expr != nullptr) {
    LowerExpr(*stmt.step_expr);
  }
  b_->Br(cond_bb);
  b_->SetBlock(exit_bb);
  PopScope();
}

void Lowerer::LowerStmt(const Stmt& stmt) {
  if (b_->Terminated() && stmt.kind != StmtKind::kEmpty) {
    // Unreachable code after return/break/...; lower into a fresh dead block
    // so expressions still type-check; SimplifyCfg removes it.
    const uint32_t dead = fn_->AddBlock();
    b_->SetBlock(dead);
  }
  switch (stmt.kind) {
    case StmtKind::kExpr:
      LowerExpr(*stmt.expr);
      return;
    case StmtKind::kDecl:
      LowerLocalDecl(stmt);
      return;
    case StmtKind::kCompound:
      PushScope();
      for (const StmtPtr& child : stmt.body) {
        LowerStmt(*child);
      }
      PopScope();
      return;
    case StmtKind::kIf:
      LowerIf(stmt);
      return;
    case StmtKind::kWhile:
      LowerWhile(stmt);
      return;
    case StmtKind::kDoWhile:
      LowerDoWhile(stmt);
      return;
    case StmtKind::kFor:
      LowerFor(stmt);
      return;
    case StmtKind::kReturn: {
      if (stmt.expr != nullptr) {
        RV value = LowerExpr(*stmt.expr);
        if (fn_->return_type.is_void()) {
          Error(stmt.loc, "void function cannot return a value");
          b_->Ret();
        } else {
          RV converted = Convert(value, fn_info_->ret, stmt.loc);
          b_->Ret(converted.op);
        }
      } else {
        if (!fn_->return_type.is_void()) {
          Error(stmt.loc, "non-void function must return a value");
          b_->Ret(Operand::Const(0, fn_->return_type));
        } else {
          b_->Ret();
        }
      }
      return;
    }
    case StmtKind::kBreak:
      if (loops_.empty()) {
        Error(stmt.loc, "'break' outside of a loop");
      } else {
        b_->Br(loops_.back().break_bb);
      }
      return;
    case StmtKind::kContinue:
      if (loops_.empty()) {
        Error(stmt.loc, "'continue' outside of a loop");
      } else {
        b_->Br(loops_.back().continue_bb);
      }
      return;
    case StmtKind::kEmpty:
      return;
  }
}

void Lowerer::LowerFunctionBody(const FunctionDecl& decl) {
  fn_ = module_.FindFunction(decl.name);
  fn_info_ = &functions_.at(decl.name);
  fn_->is_extern = false;
  fn_->blocks.clear();
  fn_->slots.clear();
  fn_->next_vreg = 0;
  fn_->AddBlock();
  b_ = std::make_unique<IrBuilder>(fn_);
  b_->SetBlock(0);

  scopes_.clear();
  loops_.clear();
  PushScope();
  for (size_t i = 0; i < decl.params.size(); ++i) {
    const int type = fn_info_->params[i];
    const uint32_t slot =
        fn_->AddSlot(decl.params[i].name, types_.ToIrType(type), /*is_param=*/true);
    scopes_.back().emplace(decl.params[i].name, LocalVar{slot, type});
  }

  LowerStmt(*decl.body);
  if (!b_->Terminated()) {
    if (fn_->return_type.is_void()) {
      b_->Ret();
    } else {
      // Missing return in a non-void function: C UB; return 0 deterministically.
      b_->Ret(Operand::Const(0, fn_->return_type));
    }
  }
  PopScope();
  b_.reset();
  fn_ = nullptr;
  fn_info_ = nullptr;
}

Result<Module> Lowerer::Lower(const TranslationUnit& unit, std::string module_name) {
  module_.name = std::move(module_name);

  for (const EnumDecl& decl : unit.enums) {
    DeclareEnum(decl);
  }
  for (const GlobalDecl& decl : unit.globals) {
    DeclareGlobal(decl);
  }
  for (const FunctionDecl& decl : unit.functions) {
    DeclareFunction(decl);
  }
  for (const FunctionDecl& decl : unit.functions) {
    if (decl.body != nullptr) {
      LowerFunctionBody(decl);
    }
  }
  if (diag_->has_errors()) {
    return Status::InvalidArgument("compilation failed:\n" + diag_->ToString());
  }
  Status verify = VerifyModule(module_);
  if (!verify.ok()) {
    return Status::Internal("IR verification failed: " + verify.ToString());
  }
  return std::move(module_);
}

}  // namespace

int64_t NormalizeValueForType(int64_t value, const CType& type) {
  if (type.kind != CType::Kind::kInt || type.bits >= 64) {
    return value;
  }
  const int shift = 64 - type.bits;
  if (type.is_signed) {
    return (value << shift) >> shift;
  }
  return static_cast<int64_t>((static_cast<uint64_t>(value) << shift) >> shift);
}

Result<Module> CompileToIr(std::string_view source, std::string module_name,
                           const CompileOptions& options, DiagnosticSink* diag) {
  Lexer lexer(source, diag);
  std::vector<Token> tokens = lexer.Tokenize();
  if (diag->has_errors()) {
    return Status::InvalidArgument("lexing failed:\n" + diag->ToString());
  }
  Parser parser(std::move(tokens), diag);
  TranslationUnit unit = parser.ParseUnit();
  if (diag->has_errors()) {
    return Status::InvalidArgument("parsing failed:\n" + diag->ToString());
  }
  Lowerer lowerer(options, diag);
  return lowerer.Lower(unit, std::move(module_name));
}

}  // namespace mv

// AST for mvc.
//
// mvc is the C subset the multiverse toolchain compiles. It supports the
// constructs the paper's case studies need: integer and enum globals with
// __attribute__((multiverse)) (optionally with an explicit value domain),
// function-pointer globals (also attributable, paper §4), pointers, 1-D
// global arrays, string literals, the usual statements and operators, and a
// set of __builtin_* intrinsics mapping to MVISA system instructions.
// Notable omissions (diagnosed, not silently ignored): structs, typedefs,
// local arrays, varargs, the preprocessor.
#ifndef MULTIVERSE_SRC_FRONTEND_AST_H_
#define MULTIVERSE_SRC_FRONTEND_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/frontend/token.h"

namespace mv {

// ---------------------------------------------------------------------------
// Type syntax (resolved by the lowering pass).

struct TypeSpec {
  enum class Base : uint8_t { kVoid, kBool, kChar, kShort, kInt, kLong, kEnum };
  Base base = Base::kInt;
  bool is_unsigned = false;
  bool explicitly_signed = false;
  std::string enum_name;
  int pointer_depth = 0;  // number of '*'

  // Function-pointer declarator: `ret (*name)(params)`.
  bool is_fnptr = false;
  std::vector<TypeSpec> fnptr_params;
  std::unique_ptr<TypeSpec> fnptr_ret;

  TypeSpec() = default;
  TypeSpec(const TypeSpec& other) { *this = other; }
  TypeSpec& operator=(const TypeSpec& other) {
    base = other.base;
    is_unsigned = other.is_unsigned;
    explicitly_signed = other.explicitly_signed;
    enum_name = other.enum_name;
    pointer_depth = other.pointer_depth;
    is_fnptr = other.is_fnptr;
    fnptr_params = other.fnptr_params;
    fnptr_ret = other.fnptr_ret
                    ? std::make_unique<TypeSpec>(*other.fnptr_ret)
                    : nullptr;
    return *this;
  }
  TypeSpec(TypeSpec&&) = default;
  TypeSpec& operator=(TypeSpec&&) = default;
};

// The multiverse attribute as parsed from source (paper §2, §3), plus the
// pvop attribute modelling the kernel's custom no-scratch-register calling
// convention for paravirt implementations (§6.1).
struct MvAttribute {
  bool present = false;         // multiverse
  bool pvop = false;            // custom calling convention
  std::vector<int64_t> domain;  // explicit specialization domain; empty = default
  // On functions: bind only these switches (partial specialization, §7.1);
  // the remaining referenced switches stay dynamic in every variant.
  std::vector<std::string> bind_names;
  SourceLoc loc;
};

// ---------------------------------------------------------------------------
// Expressions.

enum class ExprKind : uint8_t {
  kIntLit,
  kStringLit,
  kIdent,
  kUnary,     // op in unary_op: ! ~ - + * &
  kBinary,    // op in binary_op
  kAssign,    // target = value (op == kAssign) or compound (op records it)
  kCond,      // a ? b : c
  kCall,      // callee(args) — callee is an identifier expression
  kIndex,     // a[i]
  kCast,      // (type)expr
  kIncDec,    // ++/-- prefix or postfix
  kSizeof,    // sizeof(type)
};

struct Expr {
  ExprKind kind;
  SourceLoc loc;

  int64_t int_value = 0;          // kIntLit
  bool lit_unsigned = false;
  bool lit_long = false;
  std::string string_value;       // kStringLit
  std::string ident;              // kIdent / kCall callee name

  Tok op = Tok::kEof;             // operator for kUnary/kBinary/kAssign/kIncDec
  bool is_prefix = false;         // kIncDec

  std::unique_ptr<Expr> lhs;      // also: operand / condition / callee-expr
  std::unique_ptr<Expr> rhs;
  std::unique_ptr<Expr> third;    // kCond else-arm
  std::vector<std::unique_ptr<Expr>> args;  // kCall
  TypeSpec cast_type;             // kCast / kSizeof
};

using ExprPtr = std::unique_ptr<Expr>;

// ---------------------------------------------------------------------------
// Statements.

enum class StmtKind : uint8_t {
  kExpr,
  kDecl,       // local variable declaration
  kCompound,
  kIf,
  kWhile,
  kDoWhile,
  kFor,
  kReturn,
  kBreak,
  kContinue,
  kEmpty,
};

struct Stmt {
  StmtKind kind;
  SourceLoc loc;

  ExprPtr expr;                     // kExpr / kReturn value / conditions
  std::vector<std::unique_ptr<Stmt>> body;  // kCompound
  std::unique_ptr<Stmt> then_stmt;  // kIf then / loop body
  std::unique_ptr<Stmt> else_stmt;  // kIf else
  std::unique_ptr<Stmt> init_stmt;  // kFor init (kExpr or kDecl)
  ExprPtr step_expr;                // kFor step

  // kDecl:
  TypeSpec decl_type;
  std::string decl_name;
  ExprPtr decl_init;
};

using StmtPtr = std::unique_ptr<Stmt>;

// ---------------------------------------------------------------------------
// Top-level declarations.

struct ParamDecl {
  TypeSpec type;
  std::string name;
  SourceLoc loc;
};

struct FunctionDecl {
  std::string name;
  TypeSpec return_type;
  std::vector<ParamDecl> params;
  MvAttribute attr;
  bool is_extern = false;   // declaration only (no body)
  StmtPtr body;             // null for declarations
  SourceLoc loc;
};

struct GlobalDecl {
  std::string name;
  TypeSpec type;
  MvAttribute attr;
  bool is_extern = false;
  std::optional<int64_t> array_size;     // T name[N]
  ExprPtr init;                          // scalar initializer
  std::vector<ExprPtr> init_list;        // array initializer list
  std::string init_string;               // char name[] = "..."
  bool has_init_string = false;
  SourceLoc loc;
};

struct EnumDecl {
  std::string name;
  std::vector<std::pair<std::string, int64_t>> items;
  SourceLoc loc;
};

struct TranslationUnit {
  std::vector<FunctionDecl> functions;
  std::vector<GlobalDecl> globals;
  std::vector<EnumDecl> enums;
};

}  // namespace mv

#endif  // MULTIVERSE_SRC_FRONTEND_AST_H_

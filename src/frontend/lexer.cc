#include "src/frontend/lexer.h"

#include <cctype>
#include <unordered_map>

#include "src/support/str.h"

namespace mv {

namespace {

const std::unordered_map<std::string_view, Tok>& Keywords() {
  static const auto* kMap = new std::unordered_map<std::string_view, Tok>{
      {"void", Tok::kKwVoid},       {"bool", Tok::kKwBool},
      {"char", Tok::kKwChar},       {"short", Tok::kKwShort},
      {"int", Tok::kKwInt},         {"long", Tok::kKwLong},
      {"unsigned", Tok::kKwUnsigned}, {"signed", Tok::kKwSigned},
      {"enum", Tok::kKwEnum},       {"if", Tok::kKwIf},
      {"else", Tok::kKwElse},       {"while", Tok::kKwWhile},
      {"do", Tok::kKwDo},           {"for", Tok::kKwFor},
      {"return", Tok::kKwReturn},   {"break", Tok::kKwBreak},
      {"continue", Tok::kKwContinue}, {"extern", Tok::kKwExtern},
      {"static", Tok::kKwStatic},   {"const", Tok::kKwConst},
      {"sizeof", Tok::kKwSizeof},   {"__attribute__", Tok::kKwAttribute},
      {"true", Tok::kKwTrue},       {"false", Tok::kKwFalse},
      {"_Bool", Tok::kKwBool},
  };
  return *kMap;
}

}  // namespace

const char* TokName(Tok tok) {
  switch (tok) {
    case Tok::kEof: return "<eof>";
    case Tok::kIdent: return "identifier";
    case Tok::kIntLit: return "integer literal";
    case Tok::kStringLit: return "string literal";
    case Tok::kKwVoid: return "void";
    case Tok::kKwBool: return "bool";
    case Tok::kKwChar: return "char";
    case Tok::kKwShort: return "short";
    case Tok::kKwInt: return "int";
    case Tok::kKwLong: return "long";
    case Tok::kKwUnsigned: return "unsigned";
    case Tok::kKwSigned: return "signed";
    case Tok::kKwEnum: return "enum";
    case Tok::kKwIf: return "if";
    case Tok::kKwElse: return "else";
    case Tok::kKwWhile: return "while";
    case Tok::kKwDo: return "do";
    case Tok::kKwFor: return "for";
    case Tok::kKwReturn: return "return";
    case Tok::kKwBreak: return "break";
    case Tok::kKwContinue: return "continue";
    case Tok::kKwExtern: return "extern";
    case Tok::kKwStatic: return "static";
    case Tok::kKwConst: return "const";
    case Tok::kKwSizeof: return "sizeof";
    case Tok::kKwAttribute: return "__attribute__";
    case Tok::kKwTrue: return "true";
    case Tok::kKwFalse: return "false";
    case Tok::kLParen: return "(";
    case Tok::kRParen: return ")";
    case Tok::kLBrace: return "{";
    case Tok::kRBrace: return "}";
    case Tok::kLBracket: return "[";
    case Tok::kRBracket: return "]";
    case Tok::kSemi: return ";";
    case Tok::kComma: return ",";
    case Tok::kColon: return ":";
    case Tok::kQuestion: return "?";
    case Tok::kAssign: return "=";
    case Tok::kPlusAssign: return "+=";
    case Tok::kMinusAssign: return "-=";
    case Tok::kStarAssign: return "*=";
    case Tok::kSlashAssign: return "/=";
    case Tok::kPercentAssign: return "%=";
    case Tok::kAmpAssign: return "&=";
    case Tok::kPipeAssign: return "|=";
    case Tok::kCaretAssign: return "^=";
    case Tok::kShlAssign: return "<<=";
    case Tok::kShrAssign: return ">>=";
    case Tok::kPlus: return "+";
    case Tok::kMinus: return "-";
    case Tok::kStar: return "*";
    case Tok::kSlash: return "/";
    case Tok::kPercent: return "%";
    case Tok::kAmp: return "&";
    case Tok::kPipe: return "|";
    case Tok::kCaret: return "^";
    case Tok::kTilde: return "~";
    case Tok::kBang: return "!";
    case Tok::kAmpAmp: return "&&";
    case Tok::kPipePipe: return "||";
    case Tok::kEq: return "==";
    case Tok::kNe: return "!=";
    case Tok::kLt: return "<";
    case Tok::kGt: return ">";
    case Tok::kLe: return "<=";
    case Tok::kGe: return ">=";
    case Tok::kShl: return "<<";
    case Tok::kShr: return ">>";
    case Tok::kPlusPlus: return "++";
    case Tok::kMinusMinus: return "--";
  }
  return "?";
}

Lexer::Lexer(std::string_view source, DiagnosticSink* diag)
    : source_(source), diag_(diag) {}

char Lexer::Peek(int ahead) const {
  const size_t idx = pos_ + static_cast<size_t>(ahead);
  return idx < source_.size() ? source_[idx] : '\0';
}

char Lexer::Advance() {
  const char c = Peek();
  if (c == '\0') {
    return c;
  }
  ++pos_;
  if (c == '\n') {
    ++line_;
    column_ = 1;
  } else {
    ++column_;
  }
  return c;
}

bool Lexer::Match(char expected) {
  if (Peek() != expected) {
    return false;
  }
  Advance();
  return true;
}

void Lexer::SkipWhitespaceAndComments() {
  while (true) {
    const char c = Peek();
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      Advance();
    } else if (c == '/' && Peek(1) == '/') {
      while (Peek() != '\n' && Peek() != '\0') {
        Advance();
      }
    } else if (c == '/' && Peek(1) == '*') {
      const SourceLoc start = Loc();
      Advance();
      Advance();
      while (!(Peek() == '*' && Peek(1) == '/')) {
        if (Peek() == '\0') {
          diag_->Error(start, "unterminated block comment");
          return;
        }
        Advance();
      }
      Advance();
      Advance();
    } else {
      return;
    }
  }
}

Token Lexer::Make(Tok kind) {
  Token token;
  token.kind = kind;
  token.loc = token_start_;
  return token;
}

Token Lexer::LexNumber() {
  Token token = Make(Tok::kIntLit);
  uint64_t value = 0;
  if (Peek() == '0' && (Peek(1) == 'x' || Peek(1) == 'X')) {
    Advance();
    Advance();
    while (std::isxdigit(static_cast<unsigned char>(Peek())) != 0) {
      const char c = Advance();
      const int digit = std::isdigit(static_cast<unsigned char>(c)) != 0
                            ? c - '0'
                            : (std::tolower(c) - 'a' + 10);
      value = value * 16 + static_cast<uint64_t>(digit);
    }
  } else {
    while (std::isdigit(static_cast<unsigned char>(Peek())) != 0) {
      value = value * 10 + static_cast<uint64_t>(Advance() - '0');
    }
  }
  // Suffixes: u, l, ul, lu (case-insensitive).
  for (int i = 0; i < 2; ++i) {
    if (Peek() == 'u' || Peek() == 'U') {
      Advance();
      token.is_unsigned = true;
    } else if (Peek() == 'l' || Peek() == 'L') {
      Advance();
      token.is_long = true;
    }
  }
  token.int_value = static_cast<int64_t>(value);
  return token;
}

Token Lexer::LexIdent() {
  std::string text;
  while (std::isalnum(static_cast<unsigned char>(Peek())) != 0 || Peek() == '_') {
    text.push_back(Advance());
  }
  auto it = Keywords().find(text);
  if (it != Keywords().end()) {
    Token token = Make(it->second);
    token.text = std::move(text);
    return token;
  }
  Token token = Make(Tok::kIdent);
  token.text = std::move(text);
  return token;
}

Token Lexer::LexString() {
  Token token = Make(Tok::kStringLit);
  Advance();  // opening quote
  std::string text;
  while (Peek() != '"') {
    if (Peek() == '\0' || Peek() == '\n') {
      diag_->Error(token.loc, "unterminated string literal");
      break;
    }
    char c = Advance();
    if (c == '\\') {
      const char esc = Advance();
      switch (esc) {
        case 'n': c = '\n'; break;
        case 't': c = '\t'; break;
        case 'r': c = '\r'; break;
        case '0': c = '\0'; break;
        case '\\': c = '\\'; break;
        case '"': c = '"'; break;
        case '\'': c = '\''; break;
        default:
          diag_->Error(Loc(), StrFormat("unknown escape sequence '\\%c'", esc));
          c = esc;
          break;
      }
    }
    text.push_back(c);
  }
  Advance();  // closing quote
  token.text = std::move(text);
  return token;
}

Token Lexer::LexCharLit() {
  Token token = Make(Tok::kIntLit);
  Advance();  // opening quote
  char c = Advance();
  if (c == '\\') {
    const char esc = Advance();
    switch (esc) {
      case 'n': c = '\n'; break;
      case 't': c = '\t'; break;
      case 'r': c = '\r'; break;
      case '0': c = '\0'; break;
      case '\\': c = '\\'; break;
      case '\'': c = '\''; break;
      case '"': c = '"'; break;
      default:
        diag_->Error(Loc(), StrFormat("unknown escape sequence '\\%c'", esc));
        c = esc;
        break;
    }
  }
  if (!Match('\'')) {
    diag_->Error(token.loc, "unterminated character literal");
  }
  token.int_value = static_cast<unsigned char>(c);
  return token;
}

Token Lexer::Next() {
  SkipWhitespaceAndComments();
  token_start_ = Loc();
  const char c = Peek();
  if (c == '\0') {
    return Make(Tok::kEof);
  }
  if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
    return LexNumber();
  }
  if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
    return LexIdent();
  }
  if (c == '"') {
    return LexString();
  }
  if (c == '\'') {
    return LexCharLit();
  }
  Advance();
  switch (c) {
    case '(': return Make(Tok::kLParen);
    case ')': return Make(Tok::kRParen);
    case '{': return Make(Tok::kLBrace);
    case '}': return Make(Tok::kRBrace);
    case '[': return Make(Tok::kLBracket);
    case ']': return Make(Tok::kRBracket);
    case ';': return Make(Tok::kSemi);
    case ',': return Make(Tok::kComma);
    case ':': return Make(Tok::kColon);
    case '?': return Make(Tok::kQuestion);
    case '~': return Make(Tok::kTilde);
    case '+':
      if (Match('+')) return Make(Tok::kPlusPlus);
      if (Match('=')) return Make(Tok::kPlusAssign);
      return Make(Tok::kPlus);
    case '-':
      if (Match('-')) return Make(Tok::kMinusMinus);
      if (Match('=')) return Make(Tok::kMinusAssign);
      return Make(Tok::kMinus);
    case '*':
      if (Match('=')) return Make(Tok::kStarAssign);
      return Make(Tok::kStar);
    case '/':
      if (Match('=')) return Make(Tok::kSlashAssign);
      return Make(Tok::kSlash);
    case '%':
      if (Match('=')) return Make(Tok::kPercentAssign);
      return Make(Tok::kPercent);
    case '&':
      if (Match('&')) return Make(Tok::kAmpAmp);
      if (Match('=')) return Make(Tok::kAmpAssign);
      return Make(Tok::kAmp);
    case '|':
      if (Match('|')) return Make(Tok::kPipePipe);
      if (Match('=')) return Make(Tok::kPipeAssign);
      return Make(Tok::kPipe);
    case '^':
      if (Match('=')) return Make(Tok::kCaretAssign);
      return Make(Tok::kCaret);
    case '!':
      if (Match('=')) return Make(Tok::kNe);
      return Make(Tok::kBang);
    case '=':
      if (Match('=')) return Make(Tok::kEq);
      return Make(Tok::kAssign);
    case '<':
      if (Match('<')) {
        if (Match('=')) return Make(Tok::kShlAssign);
        return Make(Tok::kShl);
      }
      if (Match('=')) return Make(Tok::kLe);
      return Make(Tok::kLt);
    case '>':
      if (Match('>')) {
        if (Match('=')) return Make(Tok::kShrAssign);
        return Make(Tok::kShr);
      }
      if (Match('=')) return Make(Tok::kGe);
      return Make(Tok::kGt);
    default:
      diag_->Error(token_start_, StrFormat("unexpected character '%c'", c));
      return Next();
  }
}

std::vector<Token> Lexer::Tokenize() {
  std::vector<Token> tokens;
  while (true) {
    Token token = Next();
    const bool done = token.kind == Tok::kEof;
    tokens.push_back(std::move(token));
    if (done) {
      break;
    }
  }
  return tokens;
}

}  // namespace mv

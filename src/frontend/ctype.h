// Frontend-side type representation for mvc.
//
// mvir only needs machine-level types (IrType); the frontend additionally
// tracks pointee types, enum identity (for the paper's default enum-domain
// policy), and function-pointer signatures.
#ifndef MULTIVERSE_SRC_FRONTEND_CTYPE_H_
#define MULTIVERSE_SRC_FRONTEND_CTYPE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/mvir/ir.h"

namespace mv {

struct CType {
  enum class Kind : uint8_t { kVoid, kInt, kPtr, kFnPtr };

  Kind kind = Kind::kVoid;
  uint8_t bits = 0;
  bool is_signed = false;
  bool is_bool = false;   // stores normalize to 0/1
  int enum_id = -1;       // kInt originating from an enum type
  int pointee = -1;       // kPtr: CType index of the pointed-to type
  int fnsig = -1;         // kFnPtr: index into TypeTable::fnsigs

  bool operator==(const CType& o) const {
    return kind == o.kind && bits == o.bits && is_signed == o.is_signed &&
           is_bool == o.is_bool && enum_id == o.enum_id && pointee == o.pointee &&
           fnsig == o.fnsig;
  }
};

struct FnSig {
  int ret = -1;                // CType index
  std::vector<int> params;     // CType indices

  bool operator==(const FnSig& o) const { return ret == o.ret && params == o.params; }
};

// Interned type storage. Indices are stable; index 0 is void.
class TypeTable {
 public:
  TypeTable();

  int Intern(const CType& type);
  int InternFnSig(FnSig sig);
  int PointerTo(int pointee);

  const CType& at(int index) const { return types_[static_cast<size_t>(index)]; }
  const FnSig& fnsig(int index) const { return fnsigs_[static_cast<size_t>(index)]; }

  int void_type() const { return 0; }
  int bool_type() const { return bool_; }
  int i8() const { return i8_; }
  int u8() const { return u8_; }
  int i16() const { return i16_; }
  int u16() const { return u16_; }
  int i32() const { return i32_; }
  int u32() const { return u32_; }
  int i64() const { return i64_; }
  int u64() const { return u64_; }

  // Machine-level view of a CType.
  IrType ToIrType(int index) const;
  // Size in bytes of a value of this type (0 for void).
  int ByteSize(int index) const;
  std::string ToString(int index) const;

 private:
  std::vector<CType> types_;
  std::vector<FnSig> fnsigs_;
  int bool_, i8_, u8_, i16_, u16_, i32_, u32_, i64_, u64_;
};

}  // namespace mv

#endif  // MULTIVERSE_SRC_FRONTEND_CTYPE_H_

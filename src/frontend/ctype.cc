#include "src/frontend/ctype.h"

#include "src/support/str.h"

namespace mv {

TypeTable::TypeTable() {
  CType v;
  v.kind = CType::Kind::kVoid;
  types_.push_back(v);  // index 0

  auto make_int = [&](uint8_t bits, bool is_signed, bool is_bool = false) {
    CType t;
    t.kind = CType::Kind::kInt;
    t.bits = bits;
    t.is_signed = is_signed;
    t.is_bool = is_bool;
    return Intern(t);
  };
  bool_ = make_int(8, false, true);
  i8_ = make_int(8, true);
  u8_ = make_int(8, false);
  i16_ = make_int(16, true);
  u16_ = make_int(16, false);
  i32_ = make_int(32, true);
  u32_ = make_int(32, false);
  i64_ = make_int(64, true);
  u64_ = make_int(64, false);
}

int TypeTable::Intern(const CType& type) {
  for (size_t i = 0; i < types_.size(); ++i) {
    if (types_[i] == type) {
      return static_cast<int>(i);
    }
  }
  types_.push_back(type);
  return static_cast<int>(types_.size() - 1);
}

int TypeTable::InternFnSig(FnSig sig) {
  for (size_t i = 0; i < fnsigs_.size(); ++i) {
    if (fnsigs_[i] == sig) {
      return static_cast<int>(i);
    }
  }
  fnsigs_.push_back(std::move(sig));
  return static_cast<int>(fnsigs_.size() - 1);
}

int TypeTable::PointerTo(int pointee) {
  CType t;
  t.kind = CType::Kind::kPtr;
  t.bits = 64;
  t.pointee = pointee;
  return Intern(t);
}

IrType TypeTable::ToIrType(int index) const {
  const CType& t = at(index);
  switch (t.kind) {
    case CType::Kind::kVoid:
      return IrType::Void();
    case CType::Kind::kInt:
      return IrType::Int(t.bits, t.is_signed);
    case CType::Kind::kPtr:
    case CType::Kind::kFnPtr:
      return IrType::Ptr();
  }
  return IrType::Void();
}

int TypeTable::ByteSize(int index) const {
  const CType& t = at(index);
  switch (t.kind) {
    case CType::Kind::kVoid:
      return 0;
    case CType::Kind::kInt:
      return t.bits / 8;
    case CType::Kind::kPtr:
    case CType::Kind::kFnPtr:
      return 8;
  }
  return 0;
}

std::string TypeTable::ToString(int index) const {
  const CType& t = at(index);
  switch (t.kind) {
    case CType::Kind::kVoid:
      return "void";
    case CType::Kind::kInt:
      if (t.is_bool) {
        return "bool";
      }
      return StrFormat("%c%d", t.is_signed ? 'i' : 'u', t.bits);
    case CType::Kind::kPtr:
      return ToString(t.pointee) + "*";
    case CType::Kind::kFnPtr:
      return "fnptr";
  }
  return "?";
}

}  // namespace mv

// Token definitions for mvc — the C subset accepted by the multiverse
// toolchain's frontend.
#ifndef MULTIVERSE_SRC_FRONTEND_TOKEN_H_
#define MULTIVERSE_SRC_FRONTEND_TOKEN_H_

#include <cstdint>
#include <string>

#include "src/support/diagnostics.h"

namespace mv {

enum class Tok : uint8_t {
  kEof,
  kIdent,
  kIntLit,
  kStringLit,

  // Keywords.
  kKwVoid, kKwBool, kKwChar, kKwShort, kKwInt, kKwLong, kKwUnsigned, kKwSigned,
  kKwEnum, kKwIf, kKwElse, kKwWhile, kKwDo, kKwFor, kKwReturn, kKwBreak,
  kKwContinue, kKwExtern, kKwStatic, kKwConst, kKwSizeof, kKwAttribute,
  kKwTrue, kKwFalse,

  // Punctuation / operators.
  kLParen, kRParen, kLBrace, kRBrace, kLBracket, kRBracket,
  kSemi, kComma, kColon, kQuestion,
  kAssign,            // =
  kPlusAssign, kMinusAssign, kStarAssign, kSlashAssign, kPercentAssign,
  kAmpAssign, kPipeAssign, kCaretAssign, kShlAssign, kShrAssign,
  kPlus, kMinus, kStar, kSlash, kPercent,
  kAmp, kPipe, kCaret, kTilde, kBang,
  kAmpAmp, kPipePipe,
  kEq, kNe, kLt, kGt, kLe, kGe,
  kShl, kShr,
  kPlusPlus, kMinusMinus,
};

const char* TokName(Tok tok);

struct Token {
  Tok kind = Tok::kEof;
  std::string text;      // identifier / literal spelling
  int64_t int_value = 0; // kIntLit value
  bool is_unsigned = false;  // literal suffix 'u'
  bool is_long = false;      // literal suffix 'l'
  SourceLoc loc;
};

}  // namespace mv

#endif  // MULTIVERSE_SRC_FRONTEND_TOKEN_H_

// The mvc frontend entry point: source text -> unoptimized mvir module.
//
// The returned module is *pre-optimization*: the multiverse specializer
// (src/core/specializer.h) clones and binds variants on this IR before the
// optimization pipeline runs, matching the paper's pipeline position
// ("after the immediate-code generation, but before the optimization
// passes", §3).
#ifndef MULTIVERSE_SRC_FRONTEND_FRONTEND_H_
#define MULTIVERSE_SRC_FRONTEND_FRONTEND_H_

#include <map>
#include <string>
#include <string_view>

#include "src/mvir/ir.h"
#include "src/support/diagnostics.h"
#include "src/support/status.h"

namespace mv {

struct CompileOptions {
  // Compile-time pinned configuration values — the `#ifdef`/static-variability
  // baseline (paper Fig. 1 A). Reads of a listed global lower to the constant;
  // the variable itself still exists for ABI compatibility.
  std::map<std::string, int64_t> defines;
};

// Compiles one translation unit. Cross-TU references use `extern`
// declarations; the linker resolves them (paper §5: "we demand that the
// attribute is added to the declaration").
Result<Module> CompileToIr(std::string_view source, std::string module_name,
                           const CompileOptions& options, DiagnosticSink* diag);

}  // namespace mv

#endif  // MULTIVERSE_SRC_FRONTEND_FRONTEND_H_

#include "src/frontend/parser.h"

#include "src/support/str.h"

namespace mv {

namespace {

// Binary operator precedence (C-like). Higher binds tighter.
int BinPrecedence(Tok tok) {
  switch (tok) {
    case Tok::kPipePipe: return 1;
    case Tok::kAmpAmp: return 2;
    case Tok::kPipe: return 3;
    case Tok::kCaret: return 4;
    case Tok::kAmp: return 5;
    case Tok::kEq:
    case Tok::kNe: return 6;
    case Tok::kLt:
    case Tok::kGt:
    case Tok::kLe:
    case Tok::kGe: return 7;
    case Tok::kShl:
    case Tok::kShr: return 8;
    case Tok::kPlus:
    case Tok::kMinus: return 9;
    case Tok::kStar:
    case Tok::kSlash:
    case Tok::kPercent: return 10;
    default: return 0;
  }
}

bool IsAssignOp(Tok tok) {
  switch (tok) {
    case Tok::kAssign:
    case Tok::kPlusAssign:
    case Tok::kMinusAssign:
    case Tok::kStarAssign:
    case Tok::kSlashAssign:
    case Tok::kPercentAssign:
    case Tok::kAmpAssign:
    case Tok::kPipeAssign:
    case Tok::kCaretAssign:
    case Tok::kShlAssign:
    case Tok::kShrAssign:
      return true;
    default:
      return false;
  }
}

ExprPtr MakeExpr(ExprKind kind, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->loc = loc;
  return e;
}

}  // namespace

Parser::Parser(std::vector<Token> tokens, DiagnosticSink* diag)
    : tokens_(std::move(tokens)), diag_(diag) {}

const Token& Parser::Peek(int ahead) const {
  const size_t idx = pos_ + static_cast<size_t>(ahead);
  return idx < tokens_.size() ? tokens_[idx] : tokens_.back();
}

const Token& Parser::Advance() {
  const Token& token = Peek();
  if (pos_ + 1 < tokens_.size()) {
    ++pos_;
  }
  return token;
}

bool Parser::Match(Tok kind) {
  if (!Check(kind)) {
    return false;
  }
  Advance();
  return true;
}

const Token* Parser::Expect(Tok kind, const char* context) {
  if (Check(kind)) {
    return &Advance();
  }
  diag_->Error(Peek().loc, StrFormat("expected '%s' %s, got '%s'", TokName(kind), context,
                                     TokName(Peek().kind)));
  return nullptr;
}

void Parser::SyncToSemi() {
  while (!Check(Tok::kEof) && !Check(Tok::kSemi) && !Check(Tok::kRBrace)) {
    Advance();
  }
  Match(Tok::kSemi);
}

bool Parser::AtTypeStart() const {
  switch (Peek().kind) {
    case Tok::kKwVoid:
    case Tok::kKwBool:
    case Tok::kKwChar:
    case Tok::kKwShort:
    case Tok::kKwInt:
    case Tok::kKwLong:
    case Tok::kKwUnsigned:
    case Tok::kKwSigned:
    case Tok::kKwEnum:
    case Tok::kKwConst:
      return true;
    default:
      return false;
  }
}

MvAttribute Parser::ParseAttribute() {
  MvAttribute attr;
  if (!Check(Tok::kKwAttribute)) {
    return attr;
  }
  attr.loc = Peek().loc;
  Advance();
  Expect(Tok::kLParen, "after __attribute__");
  Expect(Tok::kLParen, "after __attribute__(");
  const Token* name = Expect(Tok::kIdent, "attribute name");
  if (name != nullptr && name->text == "multiverse") {
    attr.present = true;
  } else if (name != nullptr && name->text == "pvop") {
    attr.pvop = true;
  } else if (name != nullptr) {
    diag_->Error(name->loc, StrFormat("unknown attribute '%s'", name->text.c_str()));
  }
  // Optional arguments. Integers bound a variable's specialization domain
  // (the extended syntax of paper §3); identifiers on a *function* restrict
  // binding to the named switches (partial specialization, paper §7.1).
  if (Match(Tok::kLParen)) {
    while (!Check(Tok::kRParen) && !Check(Tok::kEof)) {
      if (Check(Tok::kIdent)) {
        attr.bind_names.push_back(Advance().text);
      } else {
        bool negative = Match(Tok::kMinus);
        const Token* value = Expect(Tok::kIntLit, "in multiverse attribute");
        if (value != nullptr) {
          attr.domain.push_back(negative ? -value->int_value : value->int_value);
        }
      }
      if (!Match(Tok::kComma)) {
        break;
      }
    }
    Expect(Tok::kRParen, "to close multiverse attribute");
  }
  Expect(Tok::kRParen, "to close attribute");
  Expect(Tok::kRParen, "to close attribute");
  return attr;
}

TypeSpec Parser::ParseTypeSpec() {
  TypeSpec spec;
  while (Match(Tok::kKwConst)) {
  }
  if (Match(Tok::kKwUnsigned)) {
    spec.is_unsigned = true;
    spec.base = TypeSpec::Base::kInt;
  } else if (Match(Tok::kKwSigned)) {
    spec.explicitly_signed = true;
    spec.base = TypeSpec::Base::kInt;
  }
  switch (Peek().kind) {
    case Tok::kKwVoid:
      Advance();
      spec.base = TypeSpec::Base::kVoid;
      break;
    case Tok::kKwBool:
      Advance();
      spec.base = TypeSpec::Base::kBool;
      break;
    case Tok::kKwChar:
      Advance();
      spec.base = TypeSpec::Base::kChar;
      break;
    case Tok::kKwShort:
      Advance();
      Match(Tok::kKwInt);
      spec.base = TypeSpec::Base::kShort;
      break;
    case Tok::kKwInt:
      Advance();
      spec.base = TypeSpec::Base::kInt;
      break;
    case Tok::kKwLong:
      Advance();
      Match(Tok::kKwLong);  // `long long` == long
      Match(Tok::kKwInt);
      spec.base = TypeSpec::Base::kLong;
      break;
    case Tok::kKwEnum: {
      Advance();
      spec.base = TypeSpec::Base::kEnum;
      const Token* name = Expect(Tok::kIdent, "after 'enum'");
      if (name != nullptr) {
        spec.enum_name = name->text;
      }
      break;
    }
    default:
      // 'unsigned'/'signed' alone means int.
      if (!spec.is_unsigned && !spec.explicitly_signed) {
        diag_->Error(Peek().loc, StrFormat("expected type, got '%s'", TokName(Peek().kind)));
      }
      break;
  }
  while (Match(Tok::kKwConst)) {
  }
  while (Match(Tok::kStar)) {
    ++spec.pointer_depth;
    while (Match(Tok::kKwConst)) {
    }
  }
  return spec;
}

void Parser::ParseEnumDecl(TranslationUnit* unit) {
  EnumDecl decl;
  decl.loc = Peek().loc;
  Advance();  // 'enum'
  const Token* name = Expect(Tok::kIdent, "enum name");
  if (name != nullptr) {
    decl.name = name->text;
  }
  Expect(Tok::kLBrace, "to open enum body");
  int64_t next_value = 0;
  while (!Check(Tok::kRBrace) && !Check(Tok::kEof)) {
    const Token* item = Expect(Tok::kIdent, "enumerator name");
    if (item == nullptr) {
      SyncToSemi();
      return;
    }
    int64_t value = next_value;
    if (Match(Tok::kAssign)) {
      const bool negative = Match(Tok::kMinus);
      const Token* lit = Expect(Tok::kIntLit, "enumerator value");
      if (lit != nullptr) {
        value = negative ? -lit->int_value : lit->int_value;
      }
    }
    decl.items.emplace_back(item->text, value);
    next_value = value + 1;
    if (!Match(Tok::kComma)) {
      break;
    }
  }
  Expect(Tok::kRBrace, "to close enum body");
  Expect(Tok::kSemi, "after enum declaration");
  unit->enums.push_back(std::move(decl));
}

void Parser::ParseTopLevelDecl(TranslationUnit* unit) {
  const SourceLoc loc = Peek().loc;
  MvAttribute attr = ParseAttribute();
  bool is_extern = false;
  while (Check(Tok::kKwExtern) || Check(Tok::kKwStatic)) {
    is_extern |= Check(Tok::kKwExtern);
    Advance();
  }
  if (!attr.present) {
    MvAttribute after = ParseAttribute();
    if (after.present) {
      attr = std::move(after);
    }
  }
  if (Check(Tok::kKwEnum) && Peek(2).kind == Tok::kLBrace) {
    ParseEnumDecl(unit);
    return;
  }
  TypeSpec type = ParseTypeSpec();

  // Function-pointer declarator: `ret (*name)(param-types)`.
  if (Check(Tok::kLParen) && Peek(1).kind == Tok::kStar) {
    Advance();  // (
    Advance();  // *
    const Token* name = Expect(Tok::kIdent, "function-pointer name");
    Expect(Tok::kRParen, "after function-pointer name");
    Expect(Tok::kLParen, "to open function-pointer parameter list");
    TypeSpec fnptr;
    fnptr.is_fnptr = true;
    fnptr.fnptr_ret = std::make_unique<TypeSpec>(std::move(type));
    if (!Check(Tok::kRParen)) {
      if (Check(Tok::kKwVoid) && Peek(1).kind == Tok::kRParen) {
        Advance();
      } else {
        do {
          fnptr.fnptr_params.push_back(ParseTypeSpec());
          // Optional parameter name in the prototype.
          if (Check(Tok::kIdent)) {
            Advance();
          }
        } while (Match(Tok::kComma));
      }
    }
    Expect(Tok::kRParen, "to close function-pointer parameter list");
    ParseGlobalRest(unit, std::move(fnptr), name != nullptr ? name->text : "<error>",
                    std::move(attr), is_extern, loc);
    return;
  }

  const Token* name = Expect(Tok::kIdent, "declarator name");
  if (name == nullptr) {
    SyncToSemi();
    return;
  }
  if (Check(Tok::kLParen)) {
    ParseFunctionRest(unit, std::move(type), name->text, std::move(attr), is_extern, loc);
  } else {
    ParseGlobalRest(unit, std::move(type), name->text, std::move(attr), is_extern, loc);
  }
}

void Parser::ParseFunctionRest(TranslationUnit* unit, TypeSpec ret, std::string name,
                               MvAttribute attr, bool is_extern, SourceLoc loc) {
  FunctionDecl fn;
  fn.name = std::move(name);
  fn.return_type = std::move(ret);
  fn.attr = std::move(attr);
  fn.loc = loc;
  Expect(Tok::kLParen, "to open parameter list");
  if (!Check(Tok::kRParen)) {
    if (Check(Tok::kKwVoid) && Peek(1).kind == Tok::kRParen) {
      Advance();
    } else {
      do {
        ParamDecl param;
        param.loc = Peek().loc;
        param.type = ParseTypeSpec();
        const Token* pname = Expect(Tok::kIdent, "parameter name");
        if (pname != nullptr) {
          param.name = pname->text;
        }
        fn.params.push_back(std::move(param));
      } while (Match(Tok::kComma));
    }
  }
  Expect(Tok::kRParen, "to close parameter list");
  if (Match(Tok::kSemi)) {
    fn.is_extern = true;
    unit->functions.push_back(std::move(fn));
    return;
  }
  fn.is_extern = is_extern && false;  // a body makes it a definition
  fn.body = ParseCompound();
  unit->functions.push_back(std::move(fn));
}

void Parser::ParseGlobalRest(TranslationUnit* unit, TypeSpec type, std::string name,
                             MvAttribute attr, bool is_extern, SourceLoc loc) {
  GlobalDecl decl;
  decl.name = std::move(name);
  decl.type = std::move(type);
  decl.attr = std::move(attr);
  decl.is_extern = is_extern;
  decl.loc = loc;
  if (Match(Tok::kLBracket)) {
    if (Check(Tok::kIntLit)) {
      decl.array_size = Advance().int_value;
    } else if (!Check(Tok::kRBracket)) {
      diag_->Error(Peek().loc, "array size must be an integer literal");
    }
    Expect(Tok::kRBracket, "to close array size");
  }
  if (Match(Tok::kAssign)) {
    if (Match(Tok::kLBrace)) {
      while (!Check(Tok::kRBrace) && !Check(Tok::kEof)) {
        decl.init_list.push_back(ParseAssign());
        if (!Match(Tok::kComma)) {
          break;
        }
      }
      Expect(Tok::kRBrace, "to close initializer list");
    } else if (Check(Tok::kStringLit)) {
      decl.init_string = Advance().text;
      decl.has_init_string = true;
    } else {
      decl.init = ParseAssign();
    }
  }
  Expect(Tok::kSemi, "after global declaration");
  unit->globals.push_back(std::move(decl));
}

TranslationUnit Parser::ParseUnit() {
  TranslationUnit unit;
  while (!Check(Tok::kEof)) {
    const size_t before = pos_;
    ParseTopLevelDecl(&unit);
    if (pos_ == before) {
      // Defensive: never loop without progress on malformed input.
      Advance();
    }
  }
  return unit;
}

// ---------------------------------------------------------------------------
// Statements

StmtPtr Parser::ParseCompound() {
  auto stmt = std::make_unique<Stmt>();
  stmt->kind = StmtKind::kCompound;
  stmt->loc = Peek().loc;
  Expect(Tok::kLBrace, "to open block");
  while (!Check(Tok::kRBrace) && !Check(Tok::kEof)) {
    stmt->body.push_back(ParseStmt());
  }
  Expect(Tok::kRBrace, "to close block");
  return stmt;
}

StmtPtr Parser::ParseLocalDecl() {
  auto stmt = std::make_unique<Stmt>();
  stmt->kind = StmtKind::kDecl;
  stmt->loc = Peek().loc;
  stmt->decl_type = ParseTypeSpec();
  // Local function-pointer declarator: `ret (*name)(params)`.
  if (Check(Tok::kLParen) && Peek(1).kind == Tok::kStar) {
    Advance();  // (
    Advance();  // *
    const Token* fp_name = Expect(Tok::kIdent, "function-pointer name");
    if (fp_name != nullptr) {
      stmt->decl_name = fp_name->text;
    }
    Expect(Tok::kRParen, "after function-pointer name");
    Expect(Tok::kLParen, "to open function-pointer parameter list");
    TypeSpec fnptr;
    fnptr.is_fnptr = true;
    fnptr.fnptr_ret = std::make_unique<TypeSpec>(std::move(stmt->decl_type));
    if (!Check(Tok::kRParen)) {
      if (Check(Tok::kKwVoid) && Peek(1).kind == Tok::kRParen) {
        Advance();
      } else {
        do {
          fnptr.fnptr_params.push_back(ParseTypeSpec());
          if (Check(Tok::kIdent)) {
            Advance();
          }
        } while (Match(Tok::kComma));
      }
    }
    Expect(Tok::kRParen, "to close function-pointer parameter list");
    stmt->decl_type = std::move(fnptr);
    if (Match(Tok::kAssign)) {
      stmt->decl_init = ParseAssign();
    }
    Expect(Tok::kSemi, "after declaration");
    return stmt;
  }
  const Token* name = Expect(Tok::kIdent, "local variable name");
  if (name != nullptr) {
    stmt->decl_name = name->text;
  }
  if (Check(Tok::kLBracket)) {
    diag_->Error(Peek().loc, "local arrays are not supported in mvc; use a global");
    SyncToSemi();
    return stmt;
  }
  if (Match(Tok::kAssign)) {
    stmt->decl_init = ParseAssign();
  }
  Expect(Tok::kSemi, "after declaration");
  return stmt;
}

StmtPtr Parser::ParseStmt() {
  const SourceLoc loc = Peek().loc;
  switch (Peek().kind) {
    case Tok::kLBrace:
      return ParseCompound();
    case Tok::kSemi: {
      Advance();
      auto stmt = std::make_unique<Stmt>();
      stmt->kind = StmtKind::kEmpty;
      stmt->loc = loc;
      return stmt;
    }
    case Tok::kKwIf: {
      Advance();
      auto stmt = std::make_unique<Stmt>();
      stmt->kind = StmtKind::kIf;
      stmt->loc = loc;
      Expect(Tok::kLParen, "after 'if'");
      stmt->expr = ParseExpr();
      Expect(Tok::kRParen, "after if condition");
      stmt->then_stmt = ParseStmt();
      if (Match(Tok::kKwElse)) {
        stmt->else_stmt = ParseStmt();
      }
      return stmt;
    }
    case Tok::kKwWhile: {
      Advance();
      auto stmt = std::make_unique<Stmt>();
      stmt->kind = StmtKind::kWhile;
      stmt->loc = loc;
      Expect(Tok::kLParen, "after 'while'");
      stmt->expr = ParseExpr();
      Expect(Tok::kRParen, "after while condition");
      stmt->then_stmt = ParseStmt();
      return stmt;
    }
    case Tok::kKwDo: {
      Advance();
      auto stmt = std::make_unique<Stmt>();
      stmt->kind = StmtKind::kDoWhile;
      stmt->loc = loc;
      stmt->then_stmt = ParseStmt();
      Expect(Tok::kKwWhile, "after do body");
      Expect(Tok::kLParen, "after 'while'");
      stmt->expr = ParseExpr();
      Expect(Tok::kRParen, "after do-while condition");
      Expect(Tok::kSemi, "after do-while");
      return stmt;
    }
    case Tok::kKwFor: {
      Advance();
      auto stmt = std::make_unique<Stmt>();
      stmt->kind = StmtKind::kFor;
      stmt->loc = loc;
      Expect(Tok::kLParen, "after 'for'");
      if (!Check(Tok::kSemi)) {
        if (AtTypeStart()) {
          stmt->init_stmt = ParseLocalDecl();  // consumes the ';'
        } else {
          auto init = std::make_unique<Stmt>();
          init->kind = StmtKind::kExpr;
          init->loc = Peek().loc;
          init->expr = ParseExpr();
          stmt->init_stmt = std::move(init);
          Expect(Tok::kSemi, "after for-init");
        }
      } else {
        Advance();
      }
      if (!Check(Tok::kSemi)) {
        stmt->expr = ParseExpr();
      }
      Expect(Tok::kSemi, "after for-condition");
      if (!Check(Tok::kRParen)) {
        stmt->step_expr = ParseExpr();
      }
      Expect(Tok::kRParen, "after for-step");
      stmt->then_stmt = ParseStmt();
      return stmt;
    }
    case Tok::kKwReturn: {
      Advance();
      auto stmt = std::make_unique<Stmt>();
      stmt->kind = StmtKind::kReturn;
      stmt->loc = loc;
      if (!Check(Tok::kSemi)) {
        stmt->expr = ParseExpr();
      }
      Expect(Tok::kSemi, "after return");
      return stmt;
    }
    case Tok::kKwBreak: {
      Advance();
      Expect(Tok::kSemi, "after break");
      auto stmt = std::make_unique<Stmt>();
      stmt->kind = StmtKind::kBreak;
      stmt->loc = loc;
      return stmt;
    }
    case Tok::kKwContinue: {
      Advance();
      Expect(Tok::kSemi, "after continue");
      auto stmt = std::make_unique<Stmt>();
      stmt->kind = StmtKind::kContinue;
      stmt->loc = loc;
      return stmt;
    }
    default:
      if (AtTypeStart()) {
        return ParseLocalDecl();
      }
      auto stmt = std::make_unique<Stmt>();
      stmt->kind = StmtKind::kExpr;
      stmt->loc = loc;
      stmt->expr = ParseExpr();
      Expect(Tok::kSemi, "after expression statement");
      return stmt;
  }
}

// ---------------------------------------------------------------------------
// Expressions

ExprPtr Parser::ParseExpr() { return ParseAssign(); }

ExprPtr Parser::ParseAssign() {
  ExprPtr lhs = ParseCond();
  if (IsAssignOp(Peek().kind)) {
    const Tok op = Advance().kind;
    ExprPtr value = ParseAssign();
    auto expr = MakeExpr(ExprKind::kAssign, lhs->loc);
    expr->op = op;
    expr->lhs = std::move(lhs);
    expr->rhs = std::move(value);
    return expr;
  }
  return lhs;
}

ExprPtr Parser::ParseCond() {
  ExprPtr cond = ParseBinary(1);
  if (Match(Tok::kQuestion)) {
    auto expr = MakeExpr(ExprKind::kCond, cond->loc);
    expr->lhs = std::move(cond);
    expr->rhs = ParseAssign();
    Expect(Tok::kColon, "in conditional expression");
    expr->third = ParseCond();
    return expr;
  }
  return cond;
}

ExprPtr Parser::ParseBinary(int min_prec) {
  ExprPtr lhs = ParseUnary();
  while (true) {
    const Tok op = Peek().kind;
    const int prec = BinPrecedence(op);
    if (prec < min_prec || prec == 0) {
      return lhs;
    }
    Advance();
    ExprPtr rhs = ParseBinary(prec + 1);
    auto expr = MakeExpr(ExprKind::kBinary, lhs->loc);
    expr->op = op;
    expr->lhs = std::move(lhs);
    expr->rhs = std::move(rhs);
    lhs = std::move(expr);
  }
}

ExprPtr Parser::ParseUnary() {
  const SourceLoc loc = Peek().loc;
  switch (Peek().kind) {
    case Tok::kPlusPlus:
    case Tok::kMinusMinus: {
      const Tok op = Advance().kind;
      auto expr = MakeExpr(ExprKind::kIncDec, loc);
      expr->op = op;
      expr->is_prefix = true;
      expr->lhs = ParseUnary();
      return expr;
    }
    case Tok::kBang:
    case Tok::kTilde:
    case Tok::kMinus:
    case Tok::kPlus:
    case Tok::kStar:
    case Tok::kAmp: {
      const Tok op = Advance().kind;
      auto expr = MakeExpr(ExprKind::kUnary, loc);
      expr->op = op;
      expr->lhs = ParseUnary();
      return expr;
    }
    case Tok::kKwSizeof: {
      Advance();
      auto expr = MakeExpr(ExprKind::kSizeof, loc);
      Expect(Tok::kLParen, "after sizeof");
      expr->cast_type = ParseTypeSpec();
      Expect(Tok::kRParen, "after sizeof type");
      return expr;
    }
    case Tok::kLParen:
      // Cast: '(' starts a type.
      if (Peek(1).kind == Tok::kKwVoid || Peek(1).kind == Tok::kKwBool ||
          Peek(1).kind == Tok::kKwChar || Peek(1).kind == Tok::kKwShort ||
          Peek(1).kind == Tok::kKwInt || Peek(1).kind == Tok::kKwLong ||
          Peek(1).kind == Tok::kKwUnsigned || Peek(1).kind == Tok::kKwSigned ||
          Peek(1).kind == Tok::kKwEnum || Peek(1).kind == Tok::kKwConst) {
        Advance();  // (
        auto expr = MakeExpr(ExprKind::kCast, loc);
        expr->cast_type = ParseTypeSpec();
        Expect(Tok::kRParen, "after cast type");
        expr->lhs = ParseUnary();
        return expr;
      }
      return ParsePostfix();
    default:
      return ParsePostfix();
  }
}

ExprPtr Parser::ParsePostfix() {
  ExprPtr expr = ParsePrimary();
  while (true) {
    const SourceLoc loc = Peek().loc;
    if (Match(Tok::kLParen)) {
      auto call = MakeExpr(ExprKind::kCall, loc);
      if (expr->kind == ExprKind::kIdent) {
        call->ident = expr->ident;
      } else {
        diag_->Error(loc, "calls are only supported through identifiers");
      }
      call->lhs = std::move(expr);
      if (!Check(Tok::kRParen)) {
        do {
          call->args.push_back(ParseAssign());
        } while (Match(Tok::kComma));
      }
      Expect(Tok::kRParen, "to close call");
      expr = std::move(call);
    } else if (Match(Tok::kLBracket)) {
      auto index = MakeExpr(ExprKind::kIndex, loc);
      index->lhs = std::move(expr);
      index->rhs = ParseExpr();
      Expect(Tok::kRBracket, "to close index");
      expr = std::move(index);
    } else if (Check(Tok::kPlusPlus) || Check(Tok::kMinusMinus)) {
      const Tok op = Advance().kind;
      auto incdec = MakeExpr(ExprKind::kIncDec, loc);
      incdec->op = op;
      incdec->is_prefix = false;
      incdec->lhs = std::move(expr);
      expr = std::move(incdec);
    } else {
      return expr;
    }
  }
}

ExprPtr Parser::ParsePrimary() {
  const Token& token = Peek();
  switch (token.kind) {
    case Tok::kIntLit: {
      Advance();
      auto expr = MakeExpr(ExprKind::kIntLit, token.loc);
      expr->int_value = token.int_value;
      expr->lit_unsigned = token.is_unsigned;
      expr->lit_long = token.is_long;
      return expr;
    }
    case Tok::kKwTrue:
    case Tok::kKwFalse: {
      Advance();
      auto expr = MakeExpr(ExprKind::kIntLit, token.loc);
      expr->int_value = token.kind == Tok::kKwTrue ? 1 : 0;
      return expr;
    }
    case Tok::kStringLit: {
      Advance();
      auto expr = MakeExpr(ExprKind::kStringLit, token.loc);
      expr->string_value = token.text;
      return expr;
    }
    case Tok::kIdent: {
      Advance();
      auto expr = MakeExpr(ExprKind::kIdent, token.loc);
      expr->ident = token.text;
      return expr;
    }
    case Tok::kLParen: {
      Advance();
      ExprPtr expr = ParseExpr();
      Expect(Tok::kRParen, "to close parenthesized expression");
      return expr;
    }
    default: {
      diag_->Error(token.loc,
                   StrFormat("expected expression, got '%s'", TokName(token.kind)));
      Advance();
      auto expr = MakeExpr(ExprKind::kIntLit, token.loc);
      expr->int_value = 0;
      return expr;
    }
  }
}

}  // namespace mv

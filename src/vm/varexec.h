// Variational execution: run the guest once over a SET of configurations,
// sharing registers, memory and transcript until a config-dependent byte is
// observed, then forking copy-on-write per-config deltas and re-merging
// deltas that reconverge to identical state (ROADMAP item 3; Wong et al.,
// "Faster Variational Execution", and "Effective Analysis of C Programs by
// Rewriting Variability" — see PAPERS.md).
//
// The executor is configured with "variational regions": byte ranges whose
// content is a pure function of the configuration index — exactly the two
// places the multiverse model lets a configuration reach the machine:
//   * the switch data cells themselves (each config's switch values), and
//   * the patchable text ranges a commit rewrites (per commit class).
// Everything else is config-independent by construction, which is why those
// regions are the ONLY possible divergence points (INTERNALS.md §15).
//
// Execution model — fork-at-observation, not symbolic state:
//   * One real Vm executes. Each context owns {presence condition, Core,
//     copy-on-write byte delta, resolved-region choices, transcript}; the
//     scheduler materializes a context onto the Vm (apply resolutions +
//     delta, flush the icache over changed text), steps it, and captures
//     its writes back into the delta.
//   * Before each step the next instruction is pre-decoded host-side and its
//     exact read/write byte sets computed (MVISA operand addressing is fully
//     register+immediate, so this is precise, not a points-to guess). Any
//     access overlapping an unresolved region resolves it: configs in the
//     context's mask are grouped by the region's content; one group resolves
//     in place, several groups fork the context.
//   * A context that reaches a join pc (the fall-through of a patchable call
//     site — the post-dominator of every multiverse divergence) parks; when
//     no unparked context remains, parked contexts at the same pc with
//     bit-identical architectural state, delta and transcript merge (masks
//     union; resolutions that disagree become unresolved again, which is
//     sound because region content is a pure function of config).
//
// Merged contexts lose exact tick/predictor accounting (the paths they
// shared legitimately differed in cycles); the context is flagged
// ticks_approx and a subsequent RDTSC — which makes ticks architecturally
// visible — is a structured error rather than a silent wrong answer.
// Faults, HLT and the putchar VMCALL are handled per context; any other exit
// is unsupported inside a variational run and reported as an error.
#ifndef MULTIVERSE_SRC_VM_VAREXEC_H_
#define MULTIVERSE_SRC_VM_VAREXEC_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/support/status.h"
#include "src/vm/presence.h"
#include "src/vm/vm.h"

namespace mv {

// A byte range whose content is a pure function of the config index.
// `variant_of_config[c]` indexes `contents`; every content has size `len`.
struct VarRegion {
  uint64_t addr = 0;
  uint32_t len = 0;
  bool is_text = false;  // requires icache flushing when (re)materialized
  std::string name;      // diagnostics: "switch fast_path", "site@0x2040", ...
  std::vector<uint32_t> variant_of_config;
  std::vector<std::vector<uint8_t>> contents;
};

struct VarExecOptions {
  // Per-context retired-instruction budget; exceeding it fails the run (a
  // diverged config that never halts would otherwise hang the whole proof).
  uint64_t max_steps_per_config = 100'000'000;
  size_t max_contexts = 4096;
  // Park-for-merge points, sorted ascending: the fall-through pc of every
  // patchable call site. Empty disables merging entirely.
  std::vector<uint64_t> join_pcs;
  // VMCALL code appended to the per-context transcript (abi.h kVmCallPutChar).
  uint8_t putchar_code = 1;
  // Scheduler slice: steps a context runs before control returns to the
  // min-instret scheduler. Larger slices amortize materialization switches.
  uint64_t schedule_slice = 64;
  // When nonzero, each finished context's full-memory checksum over
  // [checksum_lo, checksum_hi) is expanded per config (unresolved regions
  // overlaid with that config's content).
  uint64_t checksum_lo = 0;
  uint64_t checksum_hi = 0;
};

struct VarExecStats {
  uint64_t instructions_executed = 0;  // real VM steps, all contexts
  uint64_t forks = 0;
  uint64_t merges = 0;
  uint64_t merge_rounds = 0;
  uint64_t region_resolutions = 0;  // in-place (non-forking) resolutions
  uint64_t context_switches = 0;
  uint64_t peak_contexts = 0;
};

// What one configuration observed: the equivalence oracle's comparands.
struct ConfigOutcome {
  VmExit::Kind exit = VmExit::Kind::kHalt;
  Fault fault;             // terminal fault; kind == kNone on a clean halt
  std::string transcript;  // putchar stream
  uint64_t r0 = 0;         // guest return value at halt
  // FNV-1a over the architectural core state (regs, pc, flags; no counters,
  // no predictor).
  uint64_t core_hash = 0;
  // FNV-1a over [checksum_lo, checksum_hi) as this config's memory reads
  // (0 when the checksum range is empty).
  uint64_t mem_checksum = 0;
  // Shared-path accounting: instructions the context this config rode in
  // retired (identical for every config sharing the context).
  uint64_t instret = 0;
  double cycles = 0;        // approximate after any merge on the path
  bool ticks_approx = false;
};

uint64_t HashCoreArchState(const Core& core);

class VarExecutor {
 public:
  // The executor drives core 0 of `vm`. The caller sets up the entry call
  // (SetupCall) before Run(); memory must hold the SHARED state — every
  // variational region's backing bytes are whatever the base image holds,
  // and are only overlaid per context during materialization.
  VarExecutor(Vm* vm, size_t num_configs);

  // Regions must not overlap each other. Contents are deduplicated here; a
  // region whose configs all share one content is dropped (not variational).
  Status AddRegion(VarRegion region);

  // Runs all configurations to completion and expands per-config outcomes.
  // The Vm's memory and core 0 are left in the last materialized context's
  // state; callers restore their own snapshot afterwards.
  Result<std::vector<ConfigOutcome>> Run(const VarExecOptions& options);

  const VarExecStats& stats() const { return stats_; }
  size_t num_configs() const { return num_configs_; }

 private:
  struct Context {
    PresenceCondition mask;
    Core core;
    std::map<uint64_t, uint8_t> delta;     // copy-on-write guest writes
    std::map<size_t, uint32_t> resolved;   // region index -> variant index
    std::string transcript;
    bool done = false;
    bool parked = false;
    bool ticks_approx = false;
    VmExit exit;
  };

  // Materialization: applies `ctx`'s resolved regions + delta onto the Vm,
  // restoring the previous context's bytes first. `materialized_` maps every
  // currently-overlaid byte to its base (shared-image) value.
  void Materialize(Context* ctx);
  void RestoreBaseBytes();
  void ApplyByte(uint64_t addr, uint8_t value);

  // Region/resolution machinery. Returns the number of distinct content
  // groups for ctx's mask (1 = resolvable in place).
  std::vector<std::pair<uint32_t, PresenceCondition>> GroupByVariant(
      const Context& ctx, const VarRegion& region) const;
  // Resolves region `r` for the CURRENT (materialized) context, forking if
  // its mask observes several contents. Returns false if a fork happened
  // (the scheduler must re-pick).
  Result<bool> ResolveRegion(size_t r);
  int RegionAt(uint64_t addr) const;        // region containing addr, or -1
  bool RangeTouchesUnresolved(const Context& ctx, uint64_t addr,
                              uint64_t len, size_t* region_out) const;

  // Pre-decode the next instruction of the current context and resolve any
  // region its fetch window or data accesses observe. Returns false if a
  // fork happened. On success fills `*insn` (valid only when *decoded).
  Result<bool> PrepareStep(Insn* insn, bool* decoded);
  // Exact write byte-ranges of `insn` given current register state.
  void WriteSet(const Insn& insn, const Core& core,
                std::vector<std::pair<uint64_t, uint64_t>>* out) const;
  void ReadSet(const Insn& insn, const Core& core,
               std::vector<std::pair<uint64_t, uint64_t>>* out) const;

  Status StepCurrent(const VarExecOptions& options, bool* progressed);
  void FinishCurrent(const VmExit& exit);

  // Merge round over parked contexts (same pc, identical state).
  void MergeRound();
  bool TryMerge(Context* into, Context* from);
  std::map<uint64_t, uint8_t> NormalizedDelta(const Context& ctx) const;

  uint64_t ChecksumFor(const Context& ctx, size_t config,
                       const VarExecOptions& options);

  Vm* vm_;
  size_t num_configs_;
  std::vector<VarRegion> regions_;
  std::vector<Context> contexts_;
  size_t current_ = SIZE_MAX;              // materialized context index
  std::map<uint64_t, uint8_t> materialized_;  // overlaid byte -> base value
  std::vector<uint8_t> base_;              // memory snapshot at Run() start
  std::vector<uint64_t> join_pcs_;         // sorted
  uint64_t instret_base_ = 0;              // core 0's instret at Run() start
  VarExecStats stats_;
};

}  // namespace mv

#endif  // MULTIVERSE_SRC_VM_VAREXEC_H_

// Threaded-code execution tier (threaded.h): trace lowering, the direct-
// dispatch executor, and the kThreaded Run loop.
//
// The executor is compiled twice from one body: the fast instantiation
// (kProbed = false) dispatches through the pre-resolved label address stored
// in each slot — one indirect jump per slot, nothing else — and the probed
// instantiation (kProbed = true) adds the forced-deopt countdown the
// deopt-at-every-slot sweep uses, dispatching through its own label table
// keyed by the slot token (label addresses are local to each instantiation,
// so the probed executor must never follow a pointer the fast one resolved).
// Without GNU computed goto the same handler bodies compile as a token
// switch; the macros below are the only thing that changes.
//
// Two executor-local accumulations keep the hot path out of memory: tick
// charges batch in a register (`tk`) and flush to core.ticks at every point
// the architectural count is observable (RDTSC, Execute(), every exit), and
// retirement batches per trace via retired_before/total_retire. The fast
// instantiation also chains trace-to-trace through the superblock successor
// hints at term_done, so a hot loop whose blocks are all compiled never
// leaves the executor until something deopts or the budget nears.

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <optional>

#include "src/vm/threaded.h"
#include "src/vm/vm.h"

#if defined(__GNUC__) || defined(__clang__)
#define MV_THREADED_COMPUTED_GOTO 1
#else
#define MV_THREADED_COMPUTED_GOTO 0
#endif

namespace mv {

namespace {

int64_t SignExtend(uint64_t value, int width) {
  switch (width) {
    case 1:
      return static_cast<int8_t>(value);
    case 2:
      return static_cast<int16_t>(value);
    case 4:
      return static_cast<int32_t>(value);
    default:
      return static_cast<int64_t>(value);
  }
}

// Fusible second halves of a load+ALU pair.
bool FusibleAlu(Op op, ThreadedOp* fused) {
  switch (op) {
    case Op::kAdd:
      *fused = ThreadedOp::kLoadAdd;
      return true;
    case Op::kSub:
      *fused = ThreadedOp::kLoadSub;
      return true;
    case Op::kAnd:
      *fused = ThreadedOp::kLoadAnd;
      return true;
    case Op::kOr:
      *fused = ThreadedOp::kLoadOr;
      return true;
    case Op::kXor:
      *fused = ThreadedOp::kLoadXor;
      return true;
    default:
      return false;
  }
}

}  // namespace

// Lowers the longest filled prefix of `block` into a ThreadedTrace. Elements
// are filled by their first dispatch, so after the promotion threshold the
// whole executed range is filled and the handlers can skip the fill check the
// superblock walk still pays; an unfilled suffix (a tail beyond a fault that
// never un-faulted) is simply left to the interpreter — the sentinel hands
// control back at its first pc.
void Vm::BuildThreadedTrace(Superblock* block) {
  if (block->insns.empty() || !block->insns[0].filled) {
    return;
  }
  auto trace = std::make_unique<ThreadedTrace>();
  const size_t n_total = block->insns.size();
  size_t i = 0;
  while (i < n_total && block->insns[i].filled) {
    const SuperblockInsn& el = block->insns[i];
    const SuperblockInsn* next_el =
        (i + 1 < n_total && block->insns[i + 1].filled) ? &block->insns[i + 1]
                                                        : nullptr;
    ThreadedSlot s;
    s.pc = el.pc;
    s.npc = el.pc + el.insn.size;
    s.retired_before = static_cast<uint32_t>(i);
    s.a = el.insn.a;
    s.b = el.insn.b;
    s.cc = el.insn.cc;
    s.imm = static_cast<uint64_t>(el.insn.imm);
    s.mem_width = el.mem_width;
    s.mem_sign = el.mem_sign;
    size_t consumed = 1;

    // Fuses the Jcc into the preceding compare: one dispatch sets the
    // architectural flags and resolves the branch, with the predictor still
    // keyed at the Jcc's own pc.
    auto fuse_jcc = [&](ThreadedOp fused) {
      s.top = fused;
      s.cc = next_el->insn.cc;
      s.pc2 = next_el->pc;
      s.npc = next_el->pc + next_el->insn.size;
      s.tpc = s.npc + static_cast<uint64_t>(next_el->insn.imm);
      consumed = 2;
    };

    switch (el.insn.op) {
      case Op::kMovRI:
        s.top = ThreadedOp::kMovRI;
        break;
      case Op::kMovRR:
        s.top = ThreadedOp::kMovRR;
        break;
      case Op::kLd8U:
      case Op::kLd8S:
      case Op::kLd16U:
      case Op::kLd16S:
      case Op::kLd32U:
      case Op::kLd32S:
      case Op::kLd64: {
        s.top = ThreadedOp::kLoad;
        ThreadedOp fused;
        if (next_el != nullptr && FusibleAlu(next_el->insn.op, &fused)) {
          s.top = fused;
          s.a2 = next_el->insn.a;
          s.b2 = next_el->insn.b;
          s.npc = next_el->pc + next_el->insn.size;
          consumed = 2;
        }
        break;
      }
      case Op::kSt8:
      case Op::kSt16:
      case Op::kSt32:
      case Op::kSt64:
        s.top = ThreadedOp::kStore;
        break;
      case Op::kLdg:
        s.top = ThreadedOp::kLdg;
        break;
      case Op::kStg:
        s.top = ThreadedOp::kStg;
        break;
      case Op::kAdd:
        s.top = ThreadedOp::kAdd;
        break;
      case Op::kSub:
        s.top = ThreadedOp::kSub;
        break;
      case Op::kMul:
        s.top = ThreadedOp::kMul;
        break;
      case Op::kAnd:
        s.top = ThreadedOp::kAnd;
        break;
      case Op::kOr:
        s.top = ThreadedOp::kOr;
        break;
      case Op::kXor:
        s.top = ThreadedOp::kXor;
        break;
      case Op::kShl:
        s.top = ThreadedOp::kShl;
        break;
      case Op::kShr:
        s.top = ThreadedOp::kShr;
        break;
      case Op::kSar:
        s.top = ThreadedOp::kSar;
        break;
      case Op::kAddI:
        s.top = ThreadedOp::kAddI;
        break;
      case Op::kSubI:
        s.top = ThreadedOp::kSubI;
        break;
      case Op::kMulI:
        s.top = ThreadedOp::kMulI;
        break;
      case Op::kAndI:
        s.top = ThreadedOp::kAndI;
        break;
      case Op::kOrI:
        s.top = ThreadedOp::kOrI;
        break;
      case Op::kXorI:
        s.top = ThreadedOp::kXorI;
        break;
      case Op::kShlI:
        s.top = ThreadedOp::kShlI;
        break;
      case Op::kShrI:
        s.top = ThreadedOp::kShrI;
        break;
      case Op::kSarI:
        s.top = ThreadedOp::kSarI;
        break;
      case Op::kNot:
        s.top = ThreadedOp::kNot;
        break;
      case Op::kNeg:
        s.top = ThreadedOp::kNeg;
        break;
      case Op::kCmp:
        if (next_el != nullptr && next_el->insn.op == Op::kJcc) {
          fuse_jcc(ThreadedOp::kCmpJcc);
        } else {
          s.top = ThreadedOp::kCmp;
        }
        break;
      case Op::kCmpI:
        if (next_el != nullptr && next_el->insn.op == Op::kJcc) {
          fuse_jcc(ThreadedOp::kCmpIJcc);
        } else {
          s.top = ThreadedOp::kCmpI;
        }
        break;
      case Op::kSetCC:
        s.top = ThreadedOp::kSetCC;
        break;
      case Op::kJmp:
        s.top = ThreadedOp::kJmp;
        s.tpc = s.npc + s.imm;
        break;
      case Op::kJcc:
        s.top = ThreadedOp::kJcc;
        s.tpc = s.npc + s.imm;
        break;
      case Op::kCall:
        s.top = ThreadedOp::kCall;
        s.tpc = s.npc + s.imm;
        break;
      case Op::kRet:
        s.top = ThreadedOp::kRet;
        break;
      case Op::kPush:
        s.top = ThreadedOp::kPush;
        break;
      case Op::kPop:
        s.top = ThreadedOp::kPop;
        break;
      case Op::kNop:
        s.top = ThreadedOp::kNop;
        break;
      case Op::kPause:
        s.top = ThreadedOp::kPause;
        break;
      case Op::kFence:
        s.top = ThreadedOp::kFence;
        break;
      case Op::kSti:
        s.top = ThreadedOp::kSti;
        break;
      case Op::kCli:
        s.top = ThreadedOp::kCli;
        break;
      case Op::kXchg:
        s.top = ThreadedOp::kXchg;
        break;
      case Op::kRdtsc:
        s.top = ThreadedOp::kRdtsc;
        break;
      case Op::kHypercall:
        s.top = ThreadedOp::kHypercall;
        break;
      default:
        // Divisions, CALLR/CALLM, HLT, VMCALL, BKPT, invalid encodings: the
        // shared Execute() switch stays the single source of truth. The raw
        // Insn lives in the trace's side array to keep slots one line wide.
        s.top = ThreadedOp::kExec;
        s.imm = trace->exec_insns.size();
        trace->exec_insns.push_back(el.insn);
        s.ends = EndsSuperblock(el.insn.op);
        break;
    }
    trace->slots.push_back(s);
    i += consumed;
  }
  if (trace->slots.empty()) {
    return;
  }
  trace->total_retire = static_cast<uint32_t>(i);

  ThreadedSlot sentinel;
  sentinel.top = ThreadedOp::kEnd;
  sentinel.pc = i < n_total ? block->insns[i].pc : block->end;
  sentinel.retired_before = trace->total_retire;
  trace->slots.push_back(sentinel);

  // Site-pc -> slot map for every registered host patch point inside the
  // lowered range, so commits landing on compiled code are observable.
  const uint64_t blo = block->entry;
  const uint64_t bhi = sentinel.pc;
  auto it = std::lower_bound(
      patch_points_.begin(), patch_points_.end(), blo,
      [](const CodeRange& r, uint64_t a) { return r.addr + r.len <= a; });
  for (; it != patch_points_.end() && it->addr < bhi; ++it) {
    for (size_t k = 0; k + 1 < trace->slots.size(); ++k) {
      const uint64_t lo = trace->slots[k].pc;
      const uint64_t hi = trace->slots[k + 1].pc;
      if (it->addr < hi && lo < it->addr + it->len) {
        trace->patch_sites.push_back(
            ThreadedPatchSite{it->addr, it->len, static_cast<uint32_t>(k)});
        break;
      }
    }
  }

  block->trace = std::move(trace);
}

// Dispatch plumbing. MV_OP introduces a handler, MV_NEXT advances to the
// next slot, MV_JUMP dispatches the current one. Under computed goto the
// fast instantiation follows the slot's pre-resolved label address; the
// probed one indexes its own table and runs the forced-deopt countdown.
#if MV_THREADED_COMPUTED_GOTO
#define MV_OP(name) h_##name
#define MV_JUMP()                                     \
  do {                                                \
    if (kProbed) {                                    \
      if (--threaded_probe_left_ == 0) {              \
        goto forced_deopt;                            \
      }                                               \
      goto* kLabels[static_cast<int>(slot->top)];     \
    }                                                 \
    goto* slot->handler;                              \
  } while (0)
#else
#define MV_OP(name) case ThreadedOp::k##name
#define MV_JUMP() goto dispatch
#endif
#define MV_NEXT() \
  do {            \
    ++slot;       \
    MV_JUMP();    \
  } while (0)

template <bool kProbed>
std::optional<VmExit> Vm::ExecThreadedTrace(int core_id, Core& core,
                                            Superblock** pblock,
                                            uint64_t max_steps,
                                            uint64_t* steps, bool* evicted) {
  Superblock* block = *pblock;
  ThreadedTrace* trace = block->trace.get();
  const CostModel& cm = cost_model_;
  uint64_t* regs = core.regs;
  const uint64_t epoch = sb_epoch_;
  uint32_t total = trace->total_retire;
  *evicted = false;

  // Register-resident tick accumulator; flushed to core.ticks wherever the
  // architectural count is observable.
  uint64_t tk = 0;
  // Deopt scratch: slots dangle the moment a handler's own memory write
  // evicts the block, so memory-writing handlers copy what the deopt path
  // needs before the write.
  uint64_t d_npc = 0;
  uint32_t d_rb = 0;
  Fault d_fault;

  ThreadedSlot* slot = trace->slots.data();

#if MV_THREADED_COMPUTED_GOTO
  static const void* const kLabels[] = {
      &&h_MovRI,   &&h_MovRR, &&h_Load,  &&h_Store,   &&h_Ldg,     &&h_Stg,
      &&h_Add,     &&h_Sub,   &&h_Mul,   &&h_And,     &&h_Or,      &&h_Xor,
      &&h_Shl,     &&h_Shr,   &&h_Sar,   &&h_AddI,    &&h_SubI,    &&h_MulI,
      &&h_AndI,    &&h_OrI,   &&h_XorI,  &&h_ShlI,    &&h_ShrI,    &&h_SarI,
      &&h_Not,     &&h_Neg,   &&h_Cmp,   &&h_CmpI,    &&h_SetCC,   &&h_Jmp,
      &&h_Jcc,     &&h_Call,  &&h_Ret,   &&h_Push,    &&h_Pop,     &&h_Nop,
      &&h_Pause,   &&h_Fence, &&h_Sti,   &&h_Cli,     &&h_Xchg,    &&h_Rdtsc,
      &&h_Hypercall, &&h_CmpJcc, &&h_CmpIJcc, &&h_LoadAdd, &&h_LoadSub,
      &&h_LoadAnd, &&h_LoadOr, &&h_LoadXor, &&h_Exec, &&h_End,
  };
  static_assert(sizeof(kLabels) / sizeof(kLabels[0]) ==
                    static_cast<size_t>(ThreadedOp::kNumOps),
                "label table must cover every ThreadedOp");
  if (!kProbed && !trace->resolved) {
    for (ThreadedSlot& s : trace->slots) {
      s.handler = kLabels[static_cast<int>(s.top)];
    }
    trace->resolved = true;
  }
  MV_JUMP();
#else
dispatch:
  if (kProbed) {
    if (--threaded_probe_left_ == 0) {
      goto forced_deopt;
    }
  }
  switch (slot->top) {
#endif

  MV_OP(MovRI) : {
    regs[slot->a] = slot->imm;
    tk += cm.mov;
    MV_NEXT();
  }
  MV_OP(MovRR) : {
    regs[slot->a] = regs[slot->b];
    tk += cm.mov;
    MV_NEXT();
  }
  MV_OP(Load) : {
    const uint64_t addr = regs[slot->b] + slot->imm;
    uint64_t value = 0;
    Fault f = memory_.Read(addr, slot->mem_width, &value);
    if (!f.ok()) {
      d_fault = f;
      goto fault_deopt;
    }
    regs[slot->a] =
        slot->mem_sign ? static_cast<uint64_t>(SignExtend(value, slot->mem_width))
                       : value;
    tk += cm.load;
    MV_NEXT();
  }
  MV_OP(Store) : {
    d_npc = slot->npc;
    d_rb = slot->retired_before;
    const uint64_t addr = regs[slot->b] + slot->imm;
    Fault f = memory_.Write(addr, slot->mem_width, regs[slot->a]);
    if (!f.ok()) {
      d_fault = f;
      goto fault_deopt;
    }
    tk += cm.store;
    if (sb_epoch_ != epoch) {
      goto evict_deopt;
    }
    MV_NEXT();
  }
  MV_OP(Ldg) : {
    uint64_t value = 0;
    Fault f = memory_.Read(slot->imm, slot->mem_width, &value);
    if (!f.ok()) {
      d_fault = f;
      goto fault_deopt;
    }
    regs[slot->a] =
        slot->mem_sign ? static_cast<uint64_t>(SignExtend(value, slot->mem_width))
                       : value;
    tk += cm.global_load;
    MV_NEXT();
  }
  MV_OP(Stg) : {
    d_npc = slot->npc;
    d_rb = slot->retired_before;
    Fault f = memory_.Write(slot->imm, slot->mem_width, regs[slot->a]);
    if (!f.ok()) {
      d_fault = f;
      goto fault_deopt;
    }
    tk += cm.global_store;
    if (sb_epoch_ != epoch) {
      goto evict_deopt;
    }
    MV_NEXT();
  }
  MV_OP(Add) : {
    regs[slot->a] += regs[slot->b];
    tk += cm.alu;
    MV_NEXT();
  }
  MV_OP(Sub) : {
    regs[slot->a] -= regs[slot->b];
    tk += cm.alu;
    MV_NEXT();
  }
  MV_OP(Mul) : {
    regs[slot->a] *= regs[slot->b];
    tk += cm.alu;
    MV_NEXT();
  }
  MV_OP(And) : {
    regs[slot->a] &= regs[slot->b];
    tk += cm.alu;
    MV_NEXT();
  }
  MV_OP(Or) : {
    regs[slot->a] |= regs[slot->b];
    tk += cm.alu;
    MV_NEXT();
  }
  MV_OP(Xor) : {
    regs[slot->a] ^= regs[slot->b];
    tk += cm.alu;
    MV_NEXT();
  }
  MV_OP(Shl) : {
    regs[slot->a] <<= (regs[slot->b] & 63);
    tk += cm.alu;
    MV_NEXT();
  }
  MV_OP(Shr) : {
    regs[slot->a] >>= (regs[slot->b] & 63);
    tk += cm.alu;
    MV_NEXT();
  }
  MV_OP(Sar) : {
    regs[slot->a] = static_cast<uint64_t>(static_cast<int64_t>(regs[slot->a]) >>
                                          (regs[slot->b] & 63));
    tk += cm.alu;
    MV_NEXT();
  }
  MV_OP(AddI) : {
    regs[slot->a] += slot->imm;
    tk += cm.alu;
    MV_NEXT();
  }
  MV_OP(SubI) : {
    regs[slot->a] -= slot->imm;
    tk += cm.alu;
    MV_NEXT();
  }
  MV_OP(MulI) : {
    regs[slot->a] *= slot->imm;
    tk += cm.alu;
    MV_NEXT();
  }
  MV_OP(AndI) : {
    regs[slot->a] &= slot->imm;
    tk += cm.alu;
    MV_NEXT();
  }
  MV_OP(OrI) : {
    regs[slot->a] |= slot->imm;
    tk += cm.alu;
    MV_NEXT();
  }
  MV_OP(XorI) : {
    regs[slot->a] ^= slot->imm;
    tk += cm.alu;
    MV_NEXT();
  }
  MV_OP(ShlI) : {
    regs[slot->a] <<= static_cast<int64_t>(slot->imm);
    tk += cm.alu;
    MV_NEXT();
  }
  MV_OP(ShrI) : {
    regs[slot->a] >>= static_cast<int64_t>(slot->imm);
    tk += cm.alu;
    MV_NEXT();
  }
  MV_OP(SarI) : {
    regs[slot->a] = static_cast<uint64_t>(static_cast<int64_t>(regs[slot->a]) >>
                                          static_cast<int64_t>(slot->imm));
    tk += cm.alu;
    MV_NEXT();
  }
  MV_OP(Not) : {
    regs[slot->a] = ~regs[slot->a];
    tk += cm.alu;
    MV_NEXT();
  }
  MV_OP(Neg) : {
    regs[slot->a] = ~regs[slot->a] + 1;
    tk += cm.alu;
    MV_NEXT();
  }
  MV_OP(Cmp) : {
    const uint64_t a = regs[slot->a];
    const uint64_t b = regs[slot->b];
    core.zf = a == b;
    core.lt_signed = static_cast<int64_t>(a) < static_cast<int64_t>(b);
    core.lt_unsigned = a < b;
    tk += cm.cmp;
    MV_NEXT();
  }
  MV_OP(CmpI) : {
    const uint64_t a = regs[slot->a];
    const uint64_t b = slot->imm;
    core.zf = a == b;
    core.lt_signed = static_cast<int64_t>(a) < static_cast<int64_t>(b);
    core.lt_unsigned = a < b;
    tk += cm.cmp;
    MV_NEXT();
  }
  MV_OP(SetCC) : {
    regs[slot->a] = EvalCond(core, slot->cc) ? 1 : 0;
    tk += cm.setcc;
    MV_NEXT();
  }
  MV_OP(Jmp) : {
    core.pc = slot->tpc;
    tk += cm.jmp;
    goto term_done;
  }
  MV_OP(Jcc) : {
    const bool taken = EvalCond(core, slot->cc);
    const bool predicted = core.predictor.PredictCond(slot->pc);
    core.predictor.UpdateCond(slot->pc, taken);
    ++core.cond_branches;
    tk += cm.branch_predicted;
    if (predicted != taken) {
      tk += cm.branch_mispredict_penalty;
      ++core.cond_mispredicts;
    }
    core.pc = taken ? slot->tpc : slot->npc;
    goto term_done;
  }
  MV_OP(Call) : {
    const uint64_t ret_pc = slot->npc;
    const uint64_t target = slot->tpc;
    regs[kRegSP] -= 8;
    Fault f = memory_.Write(regs[kRegSP], 8, ret_pc);
    if (!f.ok()) {
      regs[kRegSP] += 8;
      d_fault = f;
      goto fault_deopt;
    }
    core.predictor.PushRet(ret_pc);
    core.pc = target;
    tk += cm.call;
    goto term_done;
  }
  MV_OP(Ret) : {
    uint64_t target = 0;
    Fault f = memory_.Read(regs[kRegSP], 8, &target);
    if (!f.ok()) {
      d_fault = f;
      goto fault_deopt;
    }
    regs[kRegSP] += 8;
    tk += cm.ret;
    if (!core.predictor.PopRetMatches(target)) {
      tk += cm.branch_mispredict_penalty;
      ++core.ret_mispredicts;
    }
    core.pc = target;
    goto term_done;
  }
  MV_OP(Push) : {
    d_npc = slot->npc;
    d_rb = slot->retired_before;
    regs[kRegSP] -= 8;
    Fault f = memory_.Write(regs[kRegSP], 8, regs[slot->a]);
    if (!f.ok()) {
      regs[kRegSP] += 8;
      d_fault = f;
      goto fault_deopt;
    }
    tk += cm.push;
    if (sb_epoch_ != epoch) {
      goto evict_deopt;
    }
    MV_NEXT();
  }
  MV_OP(Pop) : {
    uint64_t value = 0;
    Fault f = memory_.Read(regs[kRegSP], 8, &value);
    if (!f.ok()) {
      d_fault = f;
      goto fault_deopt;
    }
    regs[slot->a] = value;
    regs[kRegSP] += 8;
    tk += cm.pop;
    MV_NEXT();
  }
  MV_OP(Nop) : {
    tk += cm.nop;
    MV_NEXT();
  }
  MV_OP(Pause) : {
    tk += cm.pause;
    MV_NEXT();
  }
  MV_OP(Fence) : {
    tk += cm.fence;
    MV_NEXT();
  }
  MV_OP(Sti) : {
    core.interrupts_enabled = true;
    if (hypervisor_guest_) {
      tk += cm.sti_cli_guest_trap;
      ++core.priv_traps;
    } else {
      tk += cm.sti_cli_native;
    }
    MV_NEXT();
  }
  MV_OP(Cli) : {
    core.interrupts_enabled = false;
    if (hypervisor_guest_) {
      tk += cm.sti_cli_guest_trap;
      ++core.priv_traps;
    } else {
      tk += cm.sti_cli_native;
    }
    MV_NEXT();
  }
  MV_OP(Xchg) : {
    d_npc = slot->npc;
    d_rb = slot->retired_before;
    const uint64_t addr = regs[slot->b];
    uint64_t old = 0;
    Fault f = memory_.Read(addr, 4, &old);
    if (!f.ok()) {
      d_fault = f;
      goto fault_deopt;
    }
    f = memory_.Write(addr, 4, regs[slot->a]);
    if (!f.ok()) {
      d_fault = f;
      goto fault_deopt;
    }
    regs[slot->a] = old;
    ++core.atomic_ops;
    tk += cm.xchg_atomic;
    if (sb_epoch_ != epoch) {
      goto evict_deopt;
    }
    MV_NEXT();
  }
  MV_OP(Rdtsc) : {
    // RDTSC observes the tick counter: flush the accumulator first.
    core.ticks += tk;
    tk = 0;
    regs[slot->a] = core.ticks / kTicksPerCycle;
    tk += cm.rdtsc;
    MV_NEXT();
  }
  MV_OP(Hypercall) : {
    switch (static_cast<int64_t>(slot->imm)) {
      case 0:
        core.interrupts_enabled = true;
        break;
      case 1:
        core.interrupts_enabled = false;
        break;
      default:
        break;
    }
    tk += cm.hypercall;
    MV_NEXT();
  }
  MV_OP(CmpJcc) : {
    const uint64_t a = regs[slot->a];
    const uint64_t b = regs[slot->b];
    core.zf = a == b;
    core.lt_signed = static_cast<int64_t>(a) < static_cast<int64_t>(b);
    core.lt_unsigned = a < b;
    tk += cm.cmp;
    const bool taken = EvalCond(core, slot->cc);
    const bool predicted = core.predictor.PredictCond(slot->pc2);
    core.predictor.UpdateCond(slot->pc2, taken);
    ++core.cond_branches;
    tk += cm.branch_predicted;
    if (predicted != taken) {
      tk += cm.branch_mispredict_penalty;
      ++core.cond_mispredicts;
    }
    core.pc = taken ? slot->tpc : slot->npc;
    goto term_done;
  }
  MV_OP(CmpIJcc) : {
    const uint64_t a = regs[slot->a];
    const uint64_t b = slot->imm;
    core.zf = a == b;
    core.lt_signed = static_cast<int64_t>(a) < static_cast<int64_t>(b);
    core.lt_unsigned = a < b;
    tk += cm.cmp;
    const bool taken = EvalCond(core, slot->cc);
    const bool predicted = core.predictor.PredictCond(slot->pc2);
    core.predictor.UpdateCond(slot->pc2, taken);
    ++core.cond_branches;
    tk += cm.branch_predicted;
    if (predicted != taken) {
      tk += cm.branch_mispredict_penalty;
      ++core.cond_mispredicts;
    }
    core.pc = taken ? slot->tpc : slot->npc;
    goto term_done;
  }
  MV_OP(LoadAdd) : {
    const uint64_t addr = regs[slot->b] + slot->imm;
    uint64_t value = 0;
    Fault f = memory_.Read(addr, slot->mem_width, &value);
    if (!f.ok()) {
      d_fault = f;
      goto fault_deopt;
    }
    regs[slot->a] =
        slot->mem_sign ? static_cast<uint64_t>(SignExtend(value, slot->mem_width))
                       : value;
    tk += cm.load;
    regs[slot->a2] += regs[slot->b2];
    tk += cm.alu;
    MV_NEXT();
  }
  MV_OP(LoadSub) : {
    const uint64_t addr = regs[slot->b] + slot->imm;
    uint64_t value = 0;
    Fault f = memory_.Read(addr, slot->mem_width, &value);
    if (!f.ok()) {
      d_fault = f;
      goto fault_deopt;
    }
    regs[slot->a] =
        slot->mem_sign ? static_cast<uint64_t>(SignExtend(value, slot->mem_width))
                       : value;
    tk += cm.load;
    regs[slot->a2] -= regs[slot->b2];
    tk += cm.alu;
    MV_NEXT();
  }
  MV_OP(LoadAnd) : {
    const uint64_t addr = regs[slot->b] + slot->imm;
    uint64_t value = 0;
    Fault f = memory_.Read(addr, slot->mem_width, &value);
    if (!f.ok()) {
      d_fault = f;
      goto fault_deopt;
    }
    regs[slot->a] =
        slot->mem_sign ? static_cast<uint64_t>(SignExtend(value, slot->mem_width))
                       : value;
    tk += cm.load;
    regs[slot->a2] &= regs[slot->b2];
    tk += cm.alu;
    MV_NEXT();
  }
  MV_OP(LoadOr) : {
    const uint64_t addr = regs[slot->b] + slot->imm;
    uint64_t value = 0;
    Fault f = memory_.Read(addr, slot->mem_width, &value);
    if (!f.ok()) {
      d_fault = f;
      goto fault_deopt;
    }
    regs[slot->a] =
        slot->mem_sign ? static_cast<uint64_t>(SignExtend(value, slot->mem_width))
                       : value;
    tk += cm.load;
    regs[slot->a2] |= regs[slot->b2];
    tk += cm.alu;
    MV_NEXT();
  }
  MV_OP(LoadXor) : {
    const uint64_t addr = regs[slot->b] + slot->imm;
    uint64_t value = 0;
    Fault f = memory_.Read(addr, slot->mem_width, &value);
    if (!f.ok()) {
      d_fault = f;
      goto fault_deopt;
    }
    regs[slot->a] =
        slot->mem_sign ? static_cast<uint64_t>(SignExtend(value, slot->mem_width))
                       : value;
    tk += cm.load;
    regs[slot->a2] ^= regs[slot->b2];
    tk += cm.alu;
    MV_NEXT();
  }
  MV_OP(Exec) : {
    // Copy out before Execute: a store (CALLR/CALLM stack push) into this
    // block's own text evicts the block — and the trace with it — while the
    // instruction is still executing. Execute() observes and charges
    // core.ticks itself, so the accumulator flushes first.
    const Insn insn = trace->exec_insns[slot->imm];
    const uint32_t rb = slot->retired_before;
    const bool ends = slot->ends;
    core.ticks += tk;
    tk = 0;
    core.pc = slot->pc;
    std::optional<VmExit> e = Execute(core, insn);
    if (e.has_value()) {
      uint64_t retired = rb;
      if (e->kind == VmExit::Kind::kVmCall || e->kind == VmExit::Kind::kHalt) {
        ++retired;
      }
      core.instret += retired;
      *steps += retired;
      if (e->kind == VmExit::Kind::kFault) {
        ++threaded_deopts_;
      }
      return e;
    }
    if (ends || sb_epoch_ != epoch) {
      // Terminator retired (pc already redirected by Execute), or a
      // non-terminator's write evicted this block (pc already advanced).
      core.instret += rb + 1;
      *steps += rb + 1;
      *evicted = sb_epoch_ != epoch;
      if (!ends) {
        ++threaded_deopts_;
      }
      return std::nullopt;
    }
    MV_NEXT();
  }
  MV_OP(End) : {
    // Fell off the trace's end: the fall-through pc resumes via term_done
    // (which may chain), or back in the dispatch loop (and, for a truncated
    // lowering, in the interpreter).
    core.pc = slot->pc;
    goto term_done;
  }

#if !MV_THREADED_COMPUTED_GOTO
  }
  std::abort();  // unreachable: every token has a case
#endif

term_done:
  // A terminator (always the last slot) retired the whole trace and set pc.
  // If the successor hint already points at another compiled trace and the
  // budget covers it, jump straight in: the hot steady state never re-enters
  // the resolve loop. Probed runs never chain — the probe countdown's parked
  // cursor must interleave with the dispatch loop to guarantee progress.
  core.ticks += tk;
  tk = 0;
  core.instret += total;
  *steps += total;
  *evicted = sb_epoch_ != epoch;
  if (!kProbed && !*evicted) {
    Superblock* nb = block->succ;
    if (nb != nullptr && block->succ_epoch == epoch &&
        block->succ_pc == core.pc) {
      ThreadedTrace* nt = nb->trace.get();
      if (nt != nullptr && max_steps - *steps >= nt->total_retire) {
        block = nb;
        *pblock = nb;
        trace = nt;
        total = nt->total_retire;
        slot = nt->slots.data();
#if MV_THREADED_COMPUTED_GOTO
        if (!nt->resolved) {
          for (ThreadedSlot& s : nt->slots) {
            s.handler = kLabels[static_cast<int>(s.top)];
          }
          nt->resolved = true;
        }
#endif
        MV_JUMP();
      }
    }
  }
  return std::nullopt;

fault_deopt : {
  // Precise architectural state at the faulting instruction's boundary: the
  // instructions before it retired, it did not. `slot` is still valid — a
  // faulted access never wrote, so it cannot have evicted the block.
  core.ticks += tk;
  core.pc = slot->pc;
  core.instret += slot->retired_before;
  *steps += slot->retired_before;
  ++threaded_deopts_;
  d_fault.pc = slot->pc;
  VmExit exit;
  exit.kind = VmExit::Kind::kFault;
  exit.fault = d_fault;
  return exit;
}

evict_deopt:
  // The handler's own memory write evicted this block (self-modifying code):
  // the slot array is gone; d_npc/d_rb were copied out before the write. The
  // instruction itself retired — resume at its fall-through in the
  // interpreter, which rebuilds from coherent bytes.
  core.ticks += tk;
  core.pc = d_npc;
  core.instret += d_rb + 1;
  *steps += d_rb + 1;
  *evicted = true;
  ++threaded_deopts_;
  return std::nullopt;

forced_deopt:
  // Probe countdown fired (kProbed only): hand the current slot boundary to
  // the superblock interpreter with nothing retired from this slot. The
  // parked cursor resumes mid-block, which also keeps the dispatch loop from
  // re-entering the trace without progress.
  threaded_probe_left_ = threaded_deopt_probe_;
  {
    SuperblockCursor& cursor = sb_cursors_[static_cast<size_t>(core_id)];
    cursor.block = block;
    cursor.index = slot->retired_before;
    core.ticks += tk;
    core.pc = slot->pc;
    core.instret += slot->retired_before;
    *steps += slot->retired_before;
    ++threaded_deopts_;
    return std::nullopt;
  }
}

#undef MV_OP
#undef MV_JUMP
#undef MV_NEXT
#undef MV_THREADED_COMPUTED_GOTO

VmExit Vm::RunThreaded(int core_id, uint64_t max_steps) {
  active_core_ = core_id;
  if (core_epochs_[static_cast<size_t>(core_id)] != code_epoch_) {
    ReconcileCore(core_id);
  }
  Core& core = cores_[static_cast<size_t>(core_id)];
  SuperblockCursor& cursor = sb_cursors_[static_cast<size_t>(core_id)];
  uint64_t steps = 0;
  // The block whose walk just ended, for successor chaining (see
  // RunSuperblock; hot traces additionally chain trace-to-trace inside the
  // executor through the same hints).
  Superblock* prev = nullptr;
  // Any per-instruction observation disables the compiled tier entirely: the
  // superblock walk is the oracle for stale-fetch verdicts and trace hooks.
  const bool observing = stale_fetch_detection_ || trace_hook_ != nullptr;

  while (true) {
    // Budget before halt, like the legacy Run loop: an exhausted budget wins
    // even on a halted core.
    if (steps >= max_steps) {
      VmExit exit;
      exit.kind = VmExit::Kind::kStepLimit;
      return exit;
    }
    if (core.halted) {
      VmExit exit;
      exit.kind = VmExit::Kind::kHalt;
      return exit;
    }

    Superblock* block = nullptr;
    size_t index = 0;
    bool from_cursor = false;
    if (cursor.block != nullptr && cursor.index < cursor.block->insns.size() &&
        cursor.block->insns[cursor.index].pc == core.pc) {
      block = cursor.block;
      index = cursor.index;
      from_cursor = true;
    } else if (prev != nullptr && prev->succ != nullptr &&
               prev->succ_epoch == sb_epoch_ && prev->succ_pc == core.pc) {
      block = prev->succ;
    } else {
      VmExit fault_exit;
      block = LookupOrBuildSuperblock(core_id, core.pc, &fault_exit);
      if (block == nullptr) {
        cursor.block = nullptr;
        return fault_exit;
      }
      if (prev != nullptr) {
        prev->succ = block;
        prev->succ_pc = core.pc;
        prev->succ_epoch = sb_epoch_;
      }
    }
    cursor.block = nullptr;

    // Compiled-trace entry. Only at the block's head, never from a parked
    // cursor (a forced deopt parks the cursor at the deopt boundary: taking
    // the interpreter for that resume guarantees forward progress).
    if (!observing && index == 0 && !from_cursor) {
      if (block->trace == nullptr &&
          ++block->entries == kThreadedPromotionThreshold) {
        BuildThreadedTrace(block);
        if (block->trace != nullptr) {
          ++threaded_promotions_;
        }
      }
      if (ThreadedTrace* trace = block->trace.get()) {
        if (max_steps - steps >= trace->total_retire) {
          bool evicted = false;
          std::optional<VmExit> exit =
              threaded_deopt_probe_ != 0
                  ? ExecThreadedTrace<true>(core_id, core, &block, max_steps,
                                            &steps, &evicted)
                  : ExecThreadedTrace<false>(core_id, core, &block, max_steps,
                                             &steps, &evicted);
          if (exit.has_value()) {
            return *exit;
          }
          prev = evicted ? nullptr : block;
          continue;
        }
        // Budget shorter than the trace: deopt to the interpreter, which
        // honours the mid-block step limit precisely.
        ++threaded_deopts_;
      }
    }

    VmExit wexit;
    const WalkResult walked =
        WalkSuperblock(core_id, core, block, index, max_steps, &steps, &wexit);
    if (walked == WalkResult::kExit) {
      return wexit;
    }
    prev = walked == WalkResult::kEvicted ? nullptr : block;
  }
}

}  // namespace mv

// Paged guest memory with R/W/X protections.
//
// The multiverse runtime patches the text segment, so the memory model must
// enforce what a real OS enforces: text pages are readable and executable but
// not writable; the patcher must change the protection, write, and restore it
// (paper §4, §7.2). Guest accesses go through the checked Read/Write/Fetch
// paths; the host-side loader and patcher use the Raw paths plus explicit
// protection changes via Protect(), mirroring mprotect(2).
#ifndef MULTIVERSE_SRC_VM_MEMORY_H_
#define MULTIVERSE_SRC_VM_MEMORY_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/support/status.h"

namespace mv {

inline constexpr uint64_t kPageSize = 4096;

enum PagePerm : uint8_t {
  kPermNone = 0,
  kPermRead = 1,
  kPermWrite = 2,
  kPermExec = 4,
};

enum class FaultKind : uint8_t {
  kNone = 0,
  kUnmapped,
  kReadProtection,
  kWriteProtection,
  kExecProtection,
  kBadOpcode,
  kDivByZero,
  kStackOverflow,
  // A core's decoded-instruction cache served an entry whose backing bytes
  // have since been modified without an icache flush. Only raised when the
  // VM's stale-fetch detection is enabled (livepatch fault-injection tests).
  kStaleFetch,
};

struct Fault {
  FaultKind kind = FaultKind::kNone;
  uint64_t addr = 0;  // faulting data address (or pc for exec faults)
  uint64_t pc = 0;    // pc of the faulting instruction

  bool ok() const { return kind == FaultKind::kNone; }
  std::string ToString() const;
};

class Memory {
 public:
  explicit Memory(uint64_t size);

  uint64_t size() const { return bytes_.size(); }

  // Guest-visible accesses (permission-checked). Loads return zero-extended
  // values; the VM applies sign extension per instruction.
  Fault Read(uint64_t addr, int width, uint64_t* out) const;
  Fault Write(uint64_t addr, int width, uint64_t value);
  // Instruction fetch window check: every byte of [addr, addr+len) must be
  // mapped executable.
  Fault CheckExec(uint64_t addr, uint64_t len) const;

  // Host accesses: bounds-checked but not permission-checked (the runtime
  // patcher models mprotect explicitly via Protect()).
  Status ReadRaw(uint64_t addr, void* out, uint64_t len) const;
  Status WriteRaw(uint64_t addr, const void* data, uint64_t len);
  const uint8_t* raw(uint64_t addr) const { return bytes_.data() + addr; }

  // Changes the protection of all pages overlapping [addr, addr+len).
  Status Protect(uint64_t addr, uint64_t len, uint8_t perms);
  uint8_t PermsAt(uint64_t addr) const;

  // Number of Protect() calls issued since construction (including refused
  // ones — they model mprotect(2) syscalls either way). The commit fast path
  // exists to shrink this; benches report it.
  uint64_t protect_calls() const { return protect_calls_; }

  // True if a *guest* write to [addr, addr+len) would be allowed. The
  // multiverse runtime uses the same check before patching.
  bool Writable(uint64_t addr, uint64_t len) const;

  // Code-modification tracking for the superblock dispatch engine (vm.h):
  // the VM marks pages that back cached decoded traces, and every successful
  // Write/WriteRaw plus every Protect that touches a marked page reports the
  // affected range to the observer so overlapping traces can be evicted.
  // Unmarked pages (all data pages in practice) cost one bitmap probe per
  // store; nothing is reported while no pages are marked, so the legacy
  // engine is unaffected.
  using CodeWriteObserver = std::function<void(uint64_t addr, uint64_t len)>;
  void set_code_write_observer(CodeWriteObserver observer) {
    code_write_observer_ = std::move(observer);
  }
  // Finer-grained observer for Protect() over marked pages: `lost_exec` tells
  // the VM whether any page in the range actually lost its execute bit. A
  // protection change that *retains* X (the W^X dance flipping W on and off
  // around a patch write) does not change what a fetch would decode, so the
  // VM can skip the superblock eviction; a change that drops X must still
  // evict (an unfilled cached element would execute where a fresh fetch
  // faults). When unset, Protect falls back to the write observer — the
  // conservative broadcast behaviour.
  using ProtectObserver =
      std::function<void(uint64_t addr, uint64_t len, bool lost_exec)>;
  void set_protect_observer(ProtectObserver observer) {
    protect_observer_ = std::move(observer);
  }
  void MarkCodePages(uint64_t addr, uint64_t len);
  void ClearCodePageMarks();

 private:
  bool AnyCodePageMarked(uint64_t addr, uint64_t len) const {
    if (len == 0) {
      return false;
    }
    for (uint64_t page = addr / kPageSize; page <= (addr + len - 1) / kPageSize;
         ++page) {
      if (code_marked_[page] != 0) {
        return true;
      }
    }
    return false;
  }

  void NotifyCodeWrite(uint64_t addr, uint64_t len) {
    if (code_write_observer_ && AnyCodePageMarked(addr, len)) {
      code_write_observer_(addr, len);
    }
  }

  bool InBounds(uint64_t addr, uint64_t len) const {
    return addr <= bytes_.size() && len <= bytes_.size() - addr;
  }

  std::vector<uint8_t> bytes_;
  std::vector<uint8_t> page_perms_;
  uint64_t protect_calls_ = 0;
  std::vector<uint8_t> code_marked_;  // per page: backs a cached decode trace
  CodeWriteObserver code_write_observer_;
  ProtectObserver protect_observer_;
};

}  // namespace mv

#endif  // MULTIVERSE_SRC_VM_MEMORY_H_

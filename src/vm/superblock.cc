#include "src/vm/superblock.h"

#include "src/support/str.h"
#include "src/vm/threaded.h"

namespace mv {

namespace {
DispatchEngine g_default_engine = DispatchEngine::kLegacy;
}  // namespace

// Out-of-line so unique_ptr<ThreadedTrace> destroys a complete type here,
// while superblock.h only forward-declares it.
Superblock::Superblock() = default;
Superblock::~Superblock() = default;

const char* DispatchEngineName(DispatchEngine engine) {
  switch (engine) {
    case DispatchEngine::kLegacy:
      return "legacy";
    case DispatchEngine::kSuperblock:
      return "superblock";
    case DispatchEngine::kThreaded:
      return "threaded";
  }
  return "?";
}

Result<DispatchEngine> ParseDispatchEngine(const std::string& name) {
  if (name == "legacy") {
    return DispatchEngine::kLegacy;
  }
  if (name == "superblock" || name == "sb") {
    return DispatchEngine::kSuperblock;
  }
  if (name == "threaded" || name == "tc") {
    return DispatchEngine::kThreaded;
  }
  return Status::InvalidArgument(
      StrFormat("unknown dispatch engine '%s' (expected legacy|superblock|threaded)",
                name.c_str()));
}

void SetDefaultDispatchEngine(DispatchEngine engine) { g_default_engine = engine; }

DispatchEngine DefaultDispatchEngine() { return g_default_engine; }

}  // namespace mv

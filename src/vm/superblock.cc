#include "src/vm/superblock.h"

#include "src/support/str.h"

namespace mv {

namespace {
DispatchEngine g_default_engine = DispatchEngine::kLegacy;
}  // namespace

const char* DispatchEngineName(DispatchEngine engine) {
  switch (engine) {
    case DispatchEngine::kLegacy:
      return "legacy";
    case DispatchEngine::kSuperblock:
      return "superblock";
  }
  return "?";
}

Result<DispatchEngine> ParseDispatchEngine(const std::string& name) {
  if (name == "legacy") {
    return DispatchEngine::kLegacy;
  }
  if (name == "superblock" || name == "sb") {
    return DispatchEngine::kSuperblock;
  }
  return Status::InvalidArgument(
      StrFormat("unknown dispatch engine '%s' (expected legacy|superblock)",
                name.c_str()));
}

void SetDefaultDispatchEngine(DispatchEngine engine) { g_default_engine = engine; }

DispatchEngine DefaultDispatchEngine() { return g_default_engine; }

}  // namespace mv

// Branch prediction model: a 2-bit-counter conditional predictor, a
// branch-target buffer for indirect calls, and a return-stack buffer.
//
// This is the piece of the substrate that gives dynamic variability its cost:
// the paper's argument (§1) is that an `if (config)` check is nearly free in
// a warm microbenchmark loop but pays 15–20 cycles whenever the branch is
// mispredicted on real execution paths. Flush() models the cold-predictor
// case (bench_ablation_btb).
#ifndef MULTIVERSE_SRC_VM_PREDICTOR_H_
#define MULTIVERSE_SRC_VM_PREDICTOR_H_

#include <array>
#include <cstdint>

namespace mv {

class BranchPredictor {
 public:
  BranchPredictor() { Flush(); }

  // Conditional branches: 2-bit saturating counters, direct-mapped.
  bool PredictCond(uint64_t pc) const { return counters_[CondIndex(pc)] >= 2; }

  void UpdateCond(uint64_t pc, bool taken) {
    uint8_t& c = counters_[CondIndex(pc)];
    if (taken) {
      if (c < 3) {
        ++c;
      }
    } else if (c > 0) {
      --c;
    }
  }

  // Indirect calls/jumps: BTB holds the last target per site. Returns true if
  // the prediction matched `actual_target`; always records the actual target.
  bool PredictAndUpdateIndirect(uint64_t pc, uint64_t actual_target) {
    BtbEntry& entry = btb_[BtbIndex(pc)];
    const bool hit = entry.pc == pc && entry.target == actual_target;
    entry.pc = pc;
    entry.target = actual_target;
    return hit;
  }

  // Return-stack buffer. PushRet on call; PopRetMatches on ret — returns
  // false (mispredict) when the RSB is empty or disagrees.
  void PushRet(uint64_t return_addr) {
    rsb_[rsb_top_ % kRsbDepth] = return_addr;
    ++rsb_top_;
  }

  bool PopRetMatches(uint64_t actual) {
    if (rsb_top_ == 0) {
      return false;
    }
    --rsb_top_;
    return rsb_[rsb_top_ % kRsbDepth] == actual;
  }

  // Clears all predictor state (cold-start / context-switch pollution model).
  void Flush() {
    counters_.fill(1);  // weakly not-taken
    btb_.fill(BtbEntry{});
    rsb_.fill(0);
    rsb_top_ = 0;
  }

 private:
  static constexpr size_t kCondEntries = 4096;
  static constexpr size_t kBtbEntries = 512;
  static constexpr size_t kRsbDepth = 64;

  struct BtbEntry {
    uint64_t pc = 0;
    uint64_t target = 0;
  };

  static size_t CondIndex(uint64_t pc) { return pc % kCondEntries; }
  static size_t BtbIndex(uint64_t pc) { return pc % kBtbEntries; }

  std::array<uint8_t, kCondEntries> counters_;
  std::array<BtbEntry, kBtbEntries> btb_;
  std::array<uint64_t, kRsbDepth> rsb_;
  size_t rsb_top_ = 0;
};

}  // namespace mv

#endif  // MULTIVERSE_SRC_VM_PREDICTOR_H_

// Threaded-code execution tier: hot superblocks lowered to direct-dispatch
// handler chains.
//
// A superblock that Run dispatch has entered kThreadedPromotionThreshold
// times is lowered once into a ThreadedTrace — a contiguous array of slots,
// each carrying a pre-resolved handler (a computed-goto label address under
// GCC/Clang, a handler token elsewhere) plus fully pre-decoded operands:
// register indices, sign-extended immediates, memory-access shape, the slot's
// own pc, its fall-through pc and its taken-branch target. Execution is then
// one indirect jump per slot — no icache probe, no Insn copy, no per-
// instruction budget/fill/pc bookkeeping, no switch. Common pairs are macro-
// fused into one slot (CMP+Jcc, CMPI+Jcc, load+ALU), halving dispatches on
// branchy loop code while keeping the architectural flag updates and the
// branch predictor keyed at the Jcc's own pc.
//
// Equivalence contract (the three-engine differential suite pins this):
// every handler mirrors the superblock fast walk instruction for instruction
// — same tick charges, same operation order, same fault construction — and
// every exit from a trace (fault, HLT/VMCALL/BKPT, self-modifying write that
// evicts the running block, forced deopt probe, entry-time budget shortfall)
// lands at a precise architectural state: pc at the instruction boundary,
// instret/ticks/flags/predictor state bit-identical to what the superblock
// interpreter would hold at the same boundary. Instruction retirement is
// batched (each slot records how many instructions retired before it), so
// the common path pays zero per-slot bookkeeping yet deopt restores exact
// counts.
//
// Patchability: traces record a site-pc -> slot map for every host-side
// patch point (registered by the livepatch layer at attach and commit time)
// that falls inside the lowered range. All protocol writes funnel through
// the memory code-write observer, which evicts the owning superblock —
// destroying the trace with it — so a commit invalidates compiled code
// through exactly the same epoch-gated scoped-eviction path (succ_epoch /
// core_epochs) that keeps the superblock tier coherent; the map exists so
// commits on compiled code are observable (threaded_patchpoint_commits).
#ifndef MULTIVERSE_SRC_VM_THREADED_H_
#define MULTIVERSE_SRC_VM_THREADED_H_

#include <cstdint>
#include <vector>

#include "src/isa/isa.h"

namespace mv {

// Entries into a block at element 0 before it is lowered. Low enough that
// steady-state loops promote almost immediately, high enough that one-shot
// straight-line code never pays the (one-time) lowering cost.
inline constexpr uint32_t kThreadedPromotionThreshold = 8;

// Handler tokens. One per direct handler; everything rare or exit-producing
// routes through kExec (the shared Execute() switch, the single source of
// truth for those ops). kEnd is the sentinel slot terminating every trace.
enum class ThreadedOp : uint8_t {
  kMovRI,
  kMovRR,
  kLoad,
  kStore,
  kLdg,
  kStg,
  kAdd,
  kSub,
  kMul,
  kAnd,
  kOr,
  kXor,
  kShl,
  kShr,
  kSar,
  kAddI,
  kSubI,
  kMulI,
  kAndI,
  kOrI,
  kXorI,
  kShlI,
  kShrI,
  kSarI,
  kNot,
  kNeg,
  kCmp,
  kCmpI,
  kSetCC,
  kJmp,
  kJcc,
  kCall,
  kRet,
  kPush,
  kPop,
  kNop,
  kPause,
  kFence,
  kSti,
  kCli,
  kXchg,
  kRdtsc,
  kHypercall,
  // Macro-fused pairs (retire two instructions per dispatch).
  kCmpJcc,    // CMP ra, rb ; Jcc
  kCmpIJcc,   // CMPI ra, imm ; Jcc
  kLoadAdd,   // LD ra, [rb+imm] ; ADD ra2, rb2
  kLoadSub,
  kLoadAnd,
  kLoadOr,
  kLoadXor,
  // Fallback to the shared Execute() switch (divisions, CALLR/CALLM, HLT,
  // VMCALL, BKPT, invalid encodings).
  kExec,
  // Sentinel: restore pc to the fall-through address, retire the whole
  // trace, return to the dispatch loop.
  kEnd,
  kNumOps,
};

// Exactly one cache line: the executor streams through slots, and two slots
// per line halves the dispatch-path misses relative to a naive layout. The
// raw Insn a kExec slot needs lives in the trace's side array (indexed by
// `imm`), not here.
struct ThreadedSlot {
  // Pre-resolved handler address for the computed-goto executor. Resolved
  // lazily at the trace's first execution (label addresses are local to the
  // executor function); the token-switch fallback and the probed executor
  // dispatch on `top` instead.
  const void* handler = nullptr;
  // insn.imm bit pattern (handlers cast to signed where the fast walk does);
  // for kExec slots, the index into ThreadedTrace::exec_insns.
  uint64_t imm = 0;
  uint64_t pc = 0;           // this slot's first instruction
  uint64_t npc = 0;          // fall-through pc (after the *last* fused insn)
  uint64_t tpc = 0;          // taken-branch / call target
  uint64_t pc2 = 0;          // fused Jcc's own pc: the branch-predictor key
  // Instructions retired before this slot — equals the owning block's insns[]
  // index of the slot's first instruction, which is what makes batched
  // retirement and cursor-precise deopt possible.
  uint32_t retired_before = 0;
  ThreadedOp top = ThreadedOp::kEnd;
  uint8_t a = 0;
  uint8_t b = 0;
  Cond cc = Cond::kEq;       // Jcc/SetCC condition (the Jcc's for fused pairs)
  uint8_t mem_width = 0;     // memory-access shape, as in SuperblockInsn
  bool mem_sign = false;
  uint8_t a2 = 0;            // fused second op's register operands
  uint8_t b2 = 0;
  bool ends = false;         // kExec only: EndsSuperblock(insn.op)
};
static_assert(sizeof(ThreadedSlot) <= 64, "slot must fit one cache line");

// Host-side patch point lowered into this trace: the registered site range
// and the slot whose instruction range contains it.
struct ThreadedPatchSite {
  uint64_t addr = 0;
  uint64_t len = 0;
  uint32_t slot = 0;
};

struct ThreadedTrace {
  std::vector<ThreadedSlot> slots;  // terminated by a kEnd sentinel
  uint32_t total_retire = 0;        // instructions retired by a full run
  bool resolved = false;            // slot handlers resolved to label addrs
  std::vector<ThreadedPatchSite> patch_sites;
  std::vector<Insn> exec_insns;     // raw instructions for kExec slots
};

}  // namespace mv

#endif  // MULTIVERSE_SRC_VM_THREADED_H_

#include "src/vm/memory.h"

#include <algorithm>
#include <cstring>

#include "src/support/faultpoint.h"
#include "src/support/str.h"

namespace mv {

std::string Fault::ToString() const {
  const char* kind_name = "none";
  switch (kind) {
    case FaultKind::kNone:
      kind_name = "none";
      break;
    case FaultKind::kUnmapped:
      kind_name = "unmapped";
      break;
    case FaultKind::kReadProtection:
      kind_name = "read-protection";
      break;
    case FaultKind::kWriteProtection:
      kind_name = "write-protection";
      break;
    case FaultKind::kExecProtection:
      kind_name = "exec-protection";
      break;
    case FaultKind::kBadOpcode:
      kind_name = "bad-opcode";
      break;
    case FaultKind::kDivByZero:
      kind_name = "div-by-zero";
      break;
    case FaultKind::kStackOverflow:
      kind_name = "stack-overflow";
      break;
    case FaultKind::kStaleFetch:
      kind_name = "stale-fetch";
      break;
  }
  return StrFormat("fault{%s addr=0x%llx pc=0x%llx}", kind_name, (unsigned long long)addr,
                   (unsigned long long)pc);
}

Memory::Memory(uint64_t size) {
  const uint64_t rounded = (size + kPageSize - 1) & ~(kPageSize - 1);
  bytes_.resize(rounded, 0);
  page_perms_.resize(rounded / kPageSize, kPermNone);
  code_marked_.resize(rounded / kPageSize, 0);
}

void Memory::MarkCodePages(uint64_t addr, uint64_t len) {
  if (len == 0 || !InBounds(addr, len)) {
    return;
  }
  for (uint64_t page = addr / kPageSize; page <= (addr + len - 1) / kPageSize; ++page) {
    code_marked_[page] = 1;
  }
}

void Memory::ClearCodePageMarks() {
  std::fill(code_marked_.begin(), code_marked_.end(), 0);
}

Fault Memory::Read(uint64_t addr, int width, uint64_t* out) const {
  if (!InBounds(addr, static_cast<uint64_t>(width))) {
    return Fault{FaultKind::kUnmapped, addr, 0};
  }
  for (uint64_t page = addr / kPageSize; page <= (addr + width - 1) / kPageSize; ++page) {
    if ((page_perms_[page] & kPermRead) == 0) {
      const FaultKind kind =
          page_perms_[page] == kPermNone ? FaultKind::kUnmapped : FaultKind::kReadProtection;
      return Fault{kind, addr, 0};
    }
  }
  uint64_t value = 0;
  std::memcpy(&value, bytes_.data() + addr, static_cast<size_t>(width));
  *out = value;
  return Fault{};
}

Fault Memory::Write(uint64_t addr, int width, uint64_t value) {
  if (!InBounds(addr, static_cast<uint64_t>(width))) {
    return Fault{FaultKind::kUnmapped, addr, 0};
  }
  for (uint64_t page = addr / kPageSize; page <= (addr + width - 1) / kPageSize; ++page) {
    if ((page_perms_[page] & kPermWrite) == 0) {
      const FaultKind kind =
          page_perms_[page] == kPermNone ? FaultKind::kUnmapped : FaultKind::kWriteProtection;
      return Fault{kind, addr, 0};
    }
  }
  std::memcpy(bytes_.data() + addr, &value, static_cast<size_t>(width));
  NotifyCodeWrite(addr, static_cast<uint64_t>(width));
  return Fault{};
}

Fault Memory::CheckExec(uint64_t addr, uint64_t len) const {
  if (!InBounds(addr, len)) {
    return Fault{FaultKind::kUnmapped, addr, addr};
  }
  for (uint64_t page = addr / kPageSize; page <= (addr + len - 1) / kPageSize; ++page) {
    if ((page_perms_[page] & kPermExec) == 0) {
      const FaultKind kind =
          page_perms_[page] == kPermNone ? FaultKind::kUnmapped : FaultKind::kExecProtection;
      return Fault{kind, addr, addr};
    }
  }
  return Fault{};
}

Status Memory::ReadRaw(uint64_t addr, void* out, uint64_t len) const {
  if (!InBounds(addr, len)) {
    return Status::OutOfRange(StrFormat("ReadRaw out of bounds at 0x%llx+%llu",
                                        (unsigned long long)addr, (unsigned long long)len));
  }
  std::memcpy(out, bytes_.data() + addr, static_cast<size_t>(len));
  return Status::Ok();
}

Status Memory::WriteRaw(uint64_t addr, const void* data, uint64_t len) {
  if (!InBounds(addr, len)) {
    return Status::OutOfRange(StrFormat("WriteRaw out of bounds at 0x%llx+%llu",
                                        (unsigned long long)addr, (unsigned long long)len));
  }
  std::memcpy(bytes_.data() + addr, data, static_cast<size_t>(len));
  NotifyCodeWrite(addr, len);
  return Status::Ok();
}

Status Memory::Protect(uint64_t addr, uint64_t len, uint8_t perms) {
  if (len == 0) {
    return Status::Ok();
  }
  if (!InBounds(addr, len)) {
    return Status::OutOfRange("Protect out of bounds");
  }
  ++protect_calls_;
  // Fault point: models mprotect(2) refusing the change (ENOMEM on split VMA
  // accounting, a locked-down kernel, ...). Perms are left exactly as they
  // were — the caller's W^X dance dies mid-flight.
  if (FaultInjector::Instance().ShouldFail(FaultSite::kProtect)) {
    return Status::Internal("mprotect refused (injected fault)");
  }
  bool lost_exec = false;
  for (uint64_t page = addr / kPageSize; page <= (addr + len - 1) / kPageSize; ++page) {
    if ((page_perms_[page] & kPermExec) != 0 && (perms & kPermExec) == 0) {
      lost_exec = true;
    }
    page_perms_[page] = perms;
  }
  // A protection change over cached text (the W^X dance around a patch write)
  // is reported to the VM; with the scoped observer installed, only changes
  // that drop the execute bit force eviction of covering decode traces.
  if (protect_observer_ && AnyCodePageMarked(addr, len)) {
    protect_observer_(addr, len, lost_exec);
  } else {
    NotifyCodeWrite(addr, len);
  }
  return Status::Ok();
}

uint8_t Memory::PermsAt(uint64_t addr) const {
  if (addr >= bytes_.size()) {
    return kPermNone;
  }
  return page_perms_[addr / kPageSize];
}

bool Memory::Writable(uint64_t addr, uint64_t len) const {
  if (len == 0 || !InBounds(addr, len)) {
    return false;
  }
  for (uint64_t page = addr / kPageSize; page <= (addr + len - 1) / kPageSize; ++page) {
    if ((page_perms_[page] & kPermWrite) == 0) {
      return false;
    }
  }
  return true;
}

}  // namespace mv

// The MVISA virtual machine: fetch/decode/execute with a cycle cost model,
// an instruction cache that must be flushed after self-modification, page
// protections, a branch predictor per core, and host upcalls (VMCALL).
//
// Multiple cores share memory and are stepped round-robin by host harnesses;
// instruction execution is atomic at instruction granularity, which makes
// XCHG a correct atomic exchange.
#ifndef MULTIVERSE_SRC_VM_VM_H_
#define MULTIVERSE_SRC_VM_VM_H_

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/isa/cost_model.h"
#include "src/isa/isa.h"
#include "src/support/status.h"
#include "src/vm/memory.h"
#include "src/vm/predictor.h"
#include "src/vm/superblock.h"

namespace mv {

// Per-core architectural + microarchitectural state and counters.
struct Core {
  uint64_t regs[kNumRegs] = {};
  uint64_t pc = 0;
  // Flags set by CMP/CMPI.
  bool zf = false;
  bool lt_signed = false;
  bool lt_unsigned = false;
  bool interrupts_enabled = true;
  bool halted = false;

  BranchPredictor predictor;

  // Counters.
  uint64_t ticks = 0;        // quarter-cycles; see cost_model.h
  uint64_t instret = 0;      // retired instructions
  uint64_t cond_branches = 0;
  uint64_t cond_mispredicts = 0;
  uint64_t indirect_calls = 0;
  uint64_t indirect_mispredicts = 0;
  uint64_t ret_mispredicts = 0;
  uint64_t atomic_ops = 0;
  uint64_t priv_traps = 0;   // STI/CLI executed while in hypervisor-guest mode
  uint64_t bkpt_traps = 0;   // BKPT instructions fetched (livepatch protocol)
  uint64_t stale_fetches = 0;  // stale icache hits detected (see Vm)

  double cycles() const { return TicksToCycles(ticks); }
};

struct VmExit {
  enum class Kind : uint8_t {
    kHalt,        // HLT retired
    kVmCall,      // VMCALL retired; code in vmcall_code, arg in core regs
    kFault,       // see fault
    kStepLimit,   // max_steps exhausted
    kBreakpoint,  // BKPT fetched: pc still points at the BKPT byte; the host
                  // trap handler decides whether to park or redirect the core
  };

  Kind kind = Kind::kHalt;
  uint8_t vmcall_code = 0;
  Fault fault;

  std::string ToString() const;
};

// A half-open byte range of code, [addr, addr + len).
struct CodeRange {
  uint64_t addr = 0;
  uint64_t len = 0;

  bool Contains(uint64_t pc) const { return pc >= addr && pc < addr + len; }
};

// How a code modification reaches the *other* cores' cached superblock
// decodes (the active core always evicts its own overlapping blocks
// immediately — the self-store invariant of the dispatch loop depends on it).
enum class SuperblockInvalidation : uint8_t {
  // Evict overlapping blocks on every core at the point of the write — the
  // conservative pre-waitfree behaviour, kept as the measurable baseline.
  kBroadcast,
  // Queue the invalidated range; each core applies queued ranges to its own
  // cache when it next enters Step/Run (before any fetch, so it can never
  // dispatch a stale block). Protection changes that retain the execute bit
  // (the W^X dance around a patch write) skip eviction entirely — a fetch
  // decodes the same bytes either way.
  kScoped,
};

class Vm {
 public:
  explicit Vm(uint64_t mem_size, int num_cores = 1);

  // The memory write observer captures `this`; pin the object.
  Vm(const Vm&) = delete;
  Vm& operator=(const Vm&) = delete;

  Memory& memory() { return memory_; }
  const Memory& memory() const { return memory_; }
  Core& core(int i) { return cores_[static_cast<size_t>(i)]; }
  const Core& core(int i) const { return cores_[static_cast<size_t>(i)]; }
  int num_cores() const { return static_cast<int>(cores_.size()); }

  CostModel& cost_model() { return cost_model_; }

  // Selects the fetch/decode dispatch engine (see src/vm/superblock.h). Both
  // engines are bit-identical in architectural state, fault streams and cycle
  // accounting; the superblock engine trades memory for wall-clock speed.
  // Switching drops the superblock caches; the per-instruction icache (the
  // architectural one, with its deliberate non-coherence) is shared by both
  // engines, so a mid-run switch preserves staleness semantics.
  void SetDispatchEngine(DispatchEngine engine);
  DispatchEngine dispatch_engine() const { return dispatch_engine_; }

  // Superblock engine observability (bench/tests).
  uint64_t superblocks_built() const { return sb_built_; }
  uint64_t superblock_evictions() const { return sb_evicted_; }
  uint64_t superblock_entries() const;

  // Threaded-tier observability (bench/tests). Promotions counts blocks
  // lowered to threaded code; deopts counts every transfer out of a compiled
  // trace back to the superblock interpreter short of normal completion
  // (fault, self-modifying write, entry-time budget shortfall, forced probe);
  // patchpoint commits counts registered host patch points whose compiled
  // trace was invalidated by a commit write or flush.
  uint64_t threaded_promotions() const { return threaded_promotions_; }
  uint64_t threaded_deopts() const { return threaded_deopts_; }
  uint64_t threaded_patchpoint_commits() const {
    return threaded_patchpoint_commits_;
  }

  // Registers a host-side patch point: a code range the livepatch layer may
  // rewrite at commit time. Traces lowered over the range record a
  // site-pc -> slot map (ThreadedTrace::patch_sites); evicting such a trace
  // because a commit rewrote the range increments
  // threaded_patchpoint_commits(). Idempotent; ranges never unregister (the
  // descriptor table is immutable post-attach).
  void RegisterPatchPoint(uint64_t addr, uint64_t len);
  const std::vector<CodeRange>& patch_points() const { return patch_points_; }

  // Test knob: when n > 0, the threaded executor forcibly deopts to the
  // superblock interpreter before every n-th slot it would dispatch. The
  // deopt-at-every-slot sweep uses this to prove each slot boundary restores
  // bit-identical interpreter state. 0 disables (default).
  void set_threaded_deopt_probe(uint64_t n) {
    threaded_deopt_probe_ = n;
    threaded_probe_left_ = n;
  }

  // Selects how code modifications invalidate other cores' superblock caches
  // (default: scoped). Switching modes first drains every queued range so no
  // core can observe a mode change as a lost invalidation.
  void set_superblock_invalidation(SuperblockInvalidation mode);
  SuperblockInvalidation superblock_invalidation() const {
    return sb_invalidation_;
  }
  // Protection changes over cached text that retained the execute bit and
  // therefore skipped eviction under kScoped (each would have been a
  // full-range eviction sweep under kBroadcast).
  uint64_t superblock_protect_skips() const { return sb_protect_skips_; }

  // Commit-epoch tracking for the wait-free livepatch protocol. The global
  // code epoch advances on every code-invalidation event (write, flush, or
  // X-dropping protection change over cached text); a core's epoch records
  // the last event it has reconciled against its own caches. A core whose
  // epoch matches the global one can hold no stale decode of any patched
  // range, which is what gates revert and variant-slot reuse.
  uint64_t code_epoch() const { return code_epoch_; }
  uint64_t core_epoch(int core_id) const {
    return core_epochs_[static_cast<size_t>(core_id)];
  }
  // Applies every queued invalidation to `core_id`'s caches and marks it
  // current. Called automatically when the core enters Step/Run; exposed so
  // a commit protocol can reconcile halted cores that will never step again.
  void ReconcileCore(int core_id);

  // When true, STI/CLI executed by the guest trap into the hypervisor
  // (expensive), and HYPERCALL provides the cheap paravirtual path —
  // modelling a Xen PV guest (paper §6.1).
  void set_hypervisor_guest(bool v) { hypervisor_guest_ = v; }
  bool hypervisor_guest() const { return hypervisor_guest_; }

  // Executes instructions on `core_id` until HLT, VMCALL, a fault, or
  // `max_steps` retired instructions.
  VmExit Run(int core_id, uint64_t max_steps);

  // Executes exactly one instruction; returns nullopt if the core keeps
  // running, or the exit otherwise. Used for multi-core interleaving tests.
  std::optional<VmExit> Step(int core_id);

  // Invalidate cached decoded instructions overlapping [addr, addr+len) on
  // every core (the cross-core invalidation an x86 text_poke performs with an
  // IPI broadcast). Self-modifying code that is not flushed keeps executing
  // stale bytes — exactly the hazard the multiverse runtime library and the
  // livepatch protocols must handle (paper §4, §7.3).
  void FlushIcache(uint64_t addr, uint64_t len);
  void FlushAllIcache();
  uint64_t icache_entries() const;
  uint64_t icache_entries(int core_id) const {
    return icaches_[static_cast<size_t>(core_id)].size();
  }
  // Number of FlushIcache/FlushAllIcache calls since construction.
  uint64_t icache_flushes() const { return icache_flushes_; }

  // When enabled, an icache hit whose backing memory bytes have changed since
  // the entry was filled raises a kStaleFetch fault instead of silently
  // executing the stale decode. This is the livepatch fault-injection
  // detector; it costs a memcmp per cached fetch, so it is off by default.
  void set_stale_fetch_detection(bool v) { stale_fetch_detection_ = v; }
  bool stale_fetch_detection() const { return stale_fetch_detection_; }

  // Safe-point queries for the livepatch protocols: a core is at a safe point
  // with respect to a set of patch ranges iff its next fetch does not start
  // inside any of them. (Instruction execution is atomic, so every step
  // boundary is "between instructions"; the residual hazard is a pc parked
  // inside a multi-instruction patch range, e.g. mid-way through a
  // NOP-eradicated call site.)
  bool PcInRange(int core_id, const CodeRange& range) const {
    return range.Contains(cores_[static_cast<size_t>(core_id)].pc);
  }
  bool AtSafePoint(int core_id, const std::vector<CodeRange>& ranges) const;

  // Clears branch predictor state on all cores (cold-path ablation).
  void FlushPredictors();

  // Optional per-instruction trace hook, invoked after fetch/decode and
  // before execution. Used by `mvcc --trace` and debugging tests; costs one
  // predictable branch per step when unset.
  struct TraceEntry {
    int core = 0;
    uint64_t pc = 0;
    Insn insn;
    uint64_t ticks = 0;  // core tick counter before execution
  };
  using TraceHook = std::function<void(const TraceEntry&)>;
  void set_trace_hook(TraceHook hook) { trace_hook_ = std::move(hook); }

 private:
  struct CachedInsn {
    Insn insn;
    // Raw encoding at fill time, for stale-fetch detection.
    std::array<uint8_t, 10> bytes{};
  };

  std::optional<VmExit> Execute(Core& core, const Insn& insn);

  // Inline: on every conditional branch of every engine's hot path.
  bool EvalCond(const Core& core, Cond cc) const {
    switch (cc) {
      case Cond::kEq:
        return core.zf;
      case Cond::kNe:
        return !core.zf;
      case Cond::kLt:
        return core.lt_signed;
      case Cond::kLe:
        return core.lt_signed || core.zf;
      case Cond::kGt:
        return !(core.lt_signed || core.zf);
      case Cond::kGe:
        return !core.lt_signed;
      case Cond::kB:
        return core.lt_unsigned;
      case Cond::kBe:
        return core.lt_unsigned || core.zf;
      case Cond::kA:
        return !(core.lt_unsigned || core.zf);
      case Cond::kAe:
        return !core.lt_unsigned;
    }
    return false;
  }

  // Legacy engine: one icache probe per instruction.
  std::optional<VmExit> StepLegacy(int core_id);

  // Superblock engine (see superblock.h for the equivalence argument).
  std::optional<VmExit> StepSuperblock(int core_id);
  VmExit RunSuperblock(int core_id, uint64_t max_steps);
  // One block's per-instruction walk through DispatchSuperblockInsn — the
  // legacy-equivalent oracle path. The threaded Run loop uses it for
  // everything a compiled trace cannot take: cold blocks, mid-block resumes,
  // budget tails shorter than the trace, and observed execution (stale-fetch
  // detection / trace hook). A step-limit parks the cursor at the boundary.
  enum class WalkResult : uint8_t {
    kExit,        // *exit holds the result (fault/halt/vmcall/bkpt/steplimit)
    kEvicted,     // an instruction evicted its own block; re-resolve
    kEndOfBlock,  // walked off the block's end; block still live
  };
  WalkResult WalkSuperblock(int core_id, Core& core, Superblock* block,
                            size_t index, uint64_t max_steps, uint64_t* steps,
                            VmExit* exit);
  Superblock* LookupOrBuildSuperblock(int core_id, uint64_t pc, VmExit* fault_exit);
  // Dispatches block->insns[index]; `core.pc` must equal that element's pc.
  // Sets *block_live to false when the instruction evicted its own block
  // (store into cached text) — the caller must then re-resolve and touch
  // neither `block` nor the cursor.
  std::optional<VmExit> DispatchSuperblockInsn(int core_id, Core& core,
                                               Superblock* block, size_t index,
                                               bool* block_live);
  // Threaded tier (threaded.h / threaded.cc). Step never enters compiled
  // traces — single-stepping goes through the superblock path — so the
  // threaded engine only changes Run dispatch.
  VmExit RunThreaded(int core_id, uint64_t max_steps);
  // Lowers `block` into a ThreadedTrace (or the longest filled prefix).
  // No-op if the entry element was never dispatched.
  void BuildThreadedTrace(Superblock* block);
  // Executes (*pblock)->trace from slot 0, chaining trace-to-trace through
  // the successor hints while the step budget lasts (the fast instantiation
  // only). Returns an exit, or nullopt when the dispatch loop should
  // re-resolve at core.pc (trace completed with no compiled successor,
  // deopted, or was evicted — *evicted distinguishes the last). *pblock is
  // left at the last block executed, for the caller's chaining hint. kProbed
  // adds the forced-deopt countdown; the fast instantiation pays nothing for
  // it.
  template <bool kProbed>
  std::optional<VmExit> ExecThreadedTrace(int core_id, Core& core,
                                          Superblock** pblock,
                                          uint64_t max_steps, uint64_t* steps,
                                          bool* evicted);

  void OnCodeModified(uint64_t addr, uint64_t len);
  void OnCodeProtected(uint64_t addr, uint64_t len, bool lost_exec);
  void EvictSuperblocks(uint64_t lo, uint64_t hi);
  uint64_t EvictSuperblocksOnCore(int core_id, uint64_t lo, uint64_t hi);
  void ClearSuperblocks();
  void TrimPendingInvalidations();

  Memory memory_;
  std::vector<Core> cores_;
  CostModel cost_model_;
  bool hypervisor_guest_ = false;
  bool stale_fetch_detection_ = false;
  uint64_t icache_flushes_ = 0;
  TraceHook trace_hook_;

  // Per-core decoded-instruction caches keyed by address, one per core like
  // hardware L1i. Deliberately not coherent with memory writes: a code write
  // leaves every core's old entries in place until the explicit FlushIcache
  // broadcast; see FlushIcache(). Shared by both dispatch engines — it is
  // the source of truth for staleness semantics.
  std::vector<std::unordered_map<uint64_t, CachedInsn>> icaches_;

  // Superblock engine state. Unlike the icache, the block caches are kept
  // coherent with code modifications: the active core's overlapping blocks
  // are evicted at the point of the write, and every other core applies the
  // queued invalidations before its next fetch (immediately, under
  // kBroadcast) — so no core ever dispatches from a block whose backing
  // bytes changed. That is what lets a block dispatch skip the
  // per-instruction probe without changing observable behaviour. sb_epoch_
  // increments on every eviction so dispatch loops can detect that an
  // instruction invalidated its own block.
  DispatchEngine dispatch_engine_;
  std::vector<std::unordered_map<uint64_t, std::unique_ptr<Superblock>>> sb_caches_;
  std::vector<SuperblockCursor> sb_cursors_;
  uint64_t sb_epoch_ = 0;
  uint64_t sb_built_ = 0;
  uint64_t sb_evicted_ = 0;

  // Scoped-invalidation state: the global code epoch, each core's reconciled
  // epoch, the queue of not-yet-everywhere-applied ranges (trimmed once every
  // core has passed an entry), and the core whose Step/Run is innermost (its
  // evictions must be immediate — see EvictSuperblocks).
  SuperblockInvalidation sb_invalidation_ = SuperblockInvalidation::kScoped;
  struct PendingInvalidation {
    uint64_t seq = 0;
    CodeRange range;
  };
  uint64_t code_epoch_ = 0;
  std::vector<uint64_t> core_epochs_;
  std::vector<PendingInvalidation> sb_pending_;
  int active_core_ = 0;
  uint64_t sb_protect_skips_ = 0;

  // Threaded-tier state (counters documented at the accessors above).
  uint64_t threaded_promotions_ = 0;
  uint64_t threaded_deopts_ = 0;
  uint64_t threaded_patchpoint_commits_ = 0;
  uint64_t threaded_deopt_probe_ = 0;
  uint64_t threaded_probe_left_ = 0;
  std::vector<CodeRange> patch_points_;  // sorted by addr, deduped
};

}  // namespace mv

#endif  // MULTIVERSE_SRC_VM_VM_H_

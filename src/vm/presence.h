// Presence conditions: which configurations of a switch cross-product a
// shared execution state stands for.
//
// The variational executor (src/vm/varexec.h) runs the guest once over a
// *set* of configurations. Every execution context carries a presence
// condition — a bitmask over the flattened config-space indices — and the
// executor maintains the partition invariant: the masks of all live contexts
// union to the full space and are pairwise disjoint, so no configuration is
// ever lost or double-counted. Forks split a mask into disjoint non-empty
// parts; merges union masks of contexts that reconverged to identical state.
//
// The mask is a plain dynamic bitset. Config spaces are capped well below
// anything a bitset would struggle with (the specializer refuses cross
// products past its own cap long before), so there is no BDD machinery here
// — the flattened-index representation is exact and cheap at these sizes.
#ifndef MULTIVERSE_SRC_VM_PRESENCE_H_
#define MULTIVERSE_SRC_VM_PRESENCE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace mv {

class PresenceCondition {
 public:
  PresenceCondition() = default;
  explicit PresenceCondition(size_t num_configs) : size_(num_configs) {
    words_.resize(WordCount(num_configs), 0);
  }

  static PresenceCondition All(size_t num_configs) {
    PresenceCondition pc(num_configs);
    for (size_t i = 0; i < pc.words_.size(); ++i) {
      pc.words_[i] = ~UINT64_C(0);
    }
    pc.TrimTail();
    return pc;
  }
  static PresenceCondition None(size_t num_configs) {
    return PresenceCondition(num_configs);
  }
  static PresenceCondition Single(size_t num_configs, size_t config) {
    PresenceCondition pc(num_configs);
    pc.Set(config);
    return pc;
  }

  size_t size() const { return size_; }

  void Set(size_t config) { words_[config / 64] |= UINT64_C(1) << (config % 64); }
  void Clear(size_t config) {
    words_[config / 64] &= ~(UINT64_C(1) << (config % 64));
  }
  bool Test(size_t config) const {
    return config < size_ &&
           (words_[config / 64] >> (config % 64) & UINT64_C(1)) != 0;
  }

  size_t Count() const {
    size_t n = 0;
    for (uint64_t w : words_) {
      while (w != 0) {
        w &= w - 1;
        ++n;
      }
    }
    return n;
  }
  bool Any() const {
    for (uint64_t w : words_) {
      if (w != 0) {
        return true;
      }
    }
    return false;
  }
  bool Empty() const { return !Any(); }

  // --- Algebra (operands must share the same config-space size) ---
  PresenceCondition Union(const PresenceCondition& other) const {
    PresenceCondition out(size_);
    for (size_t i = 0; i < words_.size(); ++i) {
      out.words_[i] = words_[i] | other.words_[i];
    }
    return out;
  }
  PresenceCondition Intersect(const PresenceCondition& other) const {
    PresenceCondition out(size_);
    for (size_t i = 0; i < words_.size(); ++i) {
      out.words_[i] = words_[i] & other.words_[i];
    }
    return out;
  }
  PresenceCondition Complement() const {
    PresenceCondition out(size_);
    for (size_t i = 0; i < words_.size(); ++i) {
      out.words_[i] = ~words_[i];
    }
    out.TrimTail();
    return out;
  }
  PresenceCondition Minus(const PresenceCondition& other) const {
    PresenceCondition out(size_);
    for (size_t i = 0; i < words_.size(); ++i) {
      out.words_[i] = words_[i] & ~other.words_[i];
    }
    return out;
  }

  bool Disjoint(const PresenceCondition& other) const {
    for (size_t i = 0; i < words_.size(); ++i) {
      if ((words_[i] & other.words_[i]) != 0) {
        return false;
      }
    }
    return true;
  }
  bool IsAll() const { return Count() == size_; }

  bool operator==(const PresenceCondition& other) const {
    return size_ == other.size_ && words_ == other.words_;
  }
  bool operator!=(const PresenceCondition& other) const {
    return !(*this == other);
  }

  // The config indices present, ascending.
  std::vector<size_t> Configs() const {
    std::vector<size_t> out;
    out.reserve(Count());
    for (size_t i = 0; i < size_; ++i) {
      if (Test(i)) {
        out.push_back(i);
      }
    }
    return out;
  }

  std::string ToString() const {
    std::string out = "{";
    bool first = true;
    for (size_t i = 0; i < size_; ++i) {
      if (Test(i)) {
        if (!first) {
          out += ",";
        }
        out += std::to_string(i);
        first = false;
      }
    }
    out += "}";
    return out;
  }

 private:
  static size_t WordCount(size_t bits) { return (bits + 63) / 64; }
  // Keep the bits past `size_` zero so Count/==/Complement stay exact.
  void TrimTail() {
    const size_t tail = size_ % 64;
    if (tail != 0 && !words_.empty()) {
      words_.back() &= (UINT64_C(1) << tail) - 1;
    }
  }

  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

// Partition check over a set of masks: true iff they are pairwise disjoint
// and union to the full space — "no config lost, no config double-counted".
inline bool IsPartition(const std::vector<PresenceCondition>& masks,
                        size_t num_configs) {
  PresenceCondition seen = PresenceCondition::None(num_configs);
  for (const PresenceCondition& mask : masks) {
    if (!seen.Disjoint(mask)) {
      return false;
    }
    seen = seen.Union(mask);
  }
  return seen.IsAll();
}

}  // namespace mv

#endif  // MULTIVERSE_SRC_VM_PRESENCE_H_

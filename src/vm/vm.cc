#include "src/vm/vm.h"

#include <algorithm>
#include <cstring>

#include "src/support/faultpoint.h"
#include "src/support/str.h"
#include "src/vm/threaded.h"

namespace mv {

namespace {

int64_t SignExtend(uint64_t value, int width) {
  switch (width) {
    case 1:
      return static_cast<int8_t>(value);
    case 2:
      return static_cast<int16_t>(value);
    case 4:
      return static_cast<int32_t>(value);
    default:
      return static_cast<int64_t>(value);
  }
}

// Precomputes the memory-access shape (superblock.h) so the block-walk fast
// path does not re-derive width/signedness on every dispatch.
void PrecomputeMemShape(SuperblockInsn* el) {
  switch (el->insn.op) {
    case Op::kLd8U: el->mem_width = 1; break;
    case Op::kLd8S: el->mem_width = 1; el->mem_sign = true; break;
    case Op::kLd16U: el->mem_width = 2; break;
    case Op::kLd16S: el->mem_width = 2; el->mem_sign = true; break;
    case Op::kLd32U: el->mem_width = 4; break;
    case Op::kLd32S: el->mem_width = 4; el->mem_sign = true; break;
    case Op::kLd64: el->mem_width = 8; break;
    case Op::kSt8: el->mem_width = 1; break;
    case Op::kSt16: el->mem_width = 2; break;
    case Op::kSt32: el->mem_width = 4; break;
    case Op::kSt64: el->mem_width = 8; break;
    case Op::kLdg:
      el->mem_width = static_cast<uint8_t>(GWidthBytes(el->insn.gw));
      el->mem_sign = GWidthSigned(el->insn.gw);
      break;
    case Op::kStg:
      el->mem_width = static_cast<uint8_t>(GWidthBytes(el->insn.gw));
      break;
    default:
      break;
  }
}

}  // namespace

std::string VmExit::ToString() const {
  switch (kind) {
    case Kind::kHalt:
      return "exit{halt}";
    case Kind::kVmCall:
      return StrFormat("exit{vmcall %u}", vmcall_code);
    case Kind::kFault:
      return StrFormat("exit{%s}", fault.ToString().c_str());
    case Kind::kStepLimit:
      return "exit{step-limit}";
    case Kind::kBreakpoint:
      return "exit{breakpoint}";
  }
  return "exit{?}";
}

Vm::Vm(uint64_t mem_size, int num_cores)
    : memory_(mem_size), dispatch_engine_(DefaultDispatchEngine()) {
  cores_.resize(static_cast<size_t>(num_cores));
  icaches_.resize(static_cast<size_t>(num_cores));
  sb_caches_.resize(static_cast<size_t>(num_cores));
  sb_cursors_.resize(static_cast<size_t>(num_cores));
  core_epochs_.resize(static_cast<size_t>(num_cores), 0);
  memory_.set_code_write_observer(
      [this](uint64_t addr, uint64_t len) { OnCodeModified(addr, len); });
  memory_.set_protect_observer([this](uint64_t addr, uint64_t len, bool lost_exec) {
    OnCodeProtected(addr, len, lost_exec);
  });
}

void Vm::FlushIcache(uint64_t addr, uint64_t len) {
  // Fault point: the invalidation IPI broadcast is silently lost — no error,
  // no counter increment, every core's stale entries stay live. Recovery must
  // *detect* this via flush accounting (txn.h Seal) or stale-fetch detection;
  // nothing tells it. (Superblock caches stay coherent regardless: the write
  // itself evicts them through the memory observer.)
  if (FaultInjector::Instance().ShouldFail(FaultSite::kIcacheFlush)) {
    return;
  }
  // Instructions are at most 10 bytes; anything starting within
  // [addr - 9, addr + len) may overlap the modified range.
  const uint64_t lo = addr >= 9 ? addr - 9 : 0;
  const uint64_t hi = addr + len;
  for (auto& icache : icaches_) {
    if (hi - lo >= icache.size()) {
      // Wide range (page-coalesced commits flush merged multi-KB ranges):
      // sweeping the cache once beats one hash erase per byte — and skips
      // idle cores' empty caches entirely.
      for (auto it = icache.begin(); it != icache.end();) {
        if (it->first >= lo && it->first < hi) {
          it = icache.erase(it);
        } else {
          ++it;
        }
      }
    } else {
      for (uint64_t a = lo; a < hi; ++a) {
        icache.erase(a);
      }
    }
  }
  // Every erased icache key inside a cached block lies within that block's
  // byte span, so byte-overlap eviction over the same widened range keeps
  // block contents in lockstep with the icache.
  EvictSuperblocks(lo, addr + len);
  ++icache_flushes_;
}

void Vm::FlushAllIcache() {
  for (auto& icache : icaches_) {
    icache.clear();
  }
  ClearSuperblocks();
  ++icache_flushes_;
}

void Vm::SetDispatchEngine(DispatchEngine engine) {
  if (engine == dispatch_engine_) {
    return;
  }
  dispatch_engine_ = engine;
  // The per-insn icache carries the architectural staleness state across the
  // switch; only the (always-coherent) acceleration structures are dropped.
  ClearSuperblocks();
}

uint64_t Vm::superblock_entries() const {
  uint64_t total = 0;
  for (const auto& cache : sb_caches_) {
    total += cache.size();
  }
  return total;
}

void Vm::OnCodeModified(uint64_t addr, uint64_t len) {
  EvictSuperblocks(addr, addr + len);
}

void Vm::OnCodeProtected(uint64_t addr, uint64_t len, bool lost_exec) {
  if (sb_invalidation_ == SuperblockInvalidation::kScoped && !lost_exec) {
    // The W^X dance flips the write bit but keeps X: a fetch through the page
    // decodes the same bytes before and after, so the cached blocks stay
    // valid. The actual patch write will evict exactly the blocks containing
    // the patched word.
    ++sb_protect_skips_;
    return;
  }
  EvictSuperblocks(addr, addr + len);
}

uint64_t Vm::EvictSuperblocksOnCore(int core_id, uint64_t lo, uint64_t hi) {
  auto& cache = sb_caches_[static_cast<size_t>(core_id)];
  uint64_t evicted = 0;
  for (auto it = cache.begin(); it != cache.end();) {
    if (it->second->Overlaps(lo, hi)) {
      // A compiled trace dies with its block. When the invalidated range hits
      // a registered patch point lowered into the trace, this is a live
      // commit landing on compiled code — the observable event the
      // site-pc -> slot map exists for.
      if (const ThreadedTrace* trace = it->second->trace.get()) {
        for (const ThreadedPatchSite& site : trace->patch_sites) {
          if (site.addr < hi && lo < site.addr + site.len) {
            ++threaded_patchpoint_commits_;
          }
        }
      }
      it = cache.erase(it);
      ++sb_evicted_;
      ++evicted;
    } else {
      ++it;
    }
  }
  return evicted;
}

void Vm::RegisterPatchPoint(uint64_t addr, uint64_t len) {
  if (len == 0) {
    return;
  }
  auto it = std::lower_bound(
      patch_points_.begin(), patch_points_.end(), addr,
      [](const CodeRange& r, uint64_t a) { return r.addr < a; });
  if (it != patch_points_.end() && it->addr == addr) {
    it->len = std::max(it->len, len);
    return;
  }
  patch_points_.insert(it, CodeRange{addr, len});
}

void Vm::EvictSuperblocks(uint64_t lo, uint64_t hi) {
  if (lo >= hi) {
    return;
  }
  ++code_epoch_;
  if (sb_invalidation_ == SuperblockInvalidation::kBroadcast) {
    bool evicted = false;
    for (int c = 0; c < num_cores(); ++c) {
      evicted = EvictSuperblocksOnCore(c, lo, hi) > 0 || evicted;
      core_epochs_[static_cast<size_t>(c)] = code_epoch_;
    }
    if (evicted) {
      for (SuperblockCursor& cursor : sb_cursors_) {
        cursor.block = nullptr;
      }
      ++sb_epoch_;
    }
    return;
  }
  // Scoped: the active core evicts immediately — the dispatch loops rely on a
  // store into the running block's own text bumping sb_epoch_ before the next
  // element dispatches. Everyone else picks the range up from the queue when
  // they next enter Step/Run, which is before they can fetch anything.
  if (EvictSuperblocksOnCore(active_core_, lo, hi) > 0) {
    sb_cursors_[static_cast<size_t>(active_core_)].block = nullptr;
    ++sb_epoch_;
  }
  core_epochs_[static_cast<size_t>(active_core_)] = code_epoch_;
  sb_pending_.push_back(PendingInvalidation{code_epoch_, CodeRange{lo, hi - lo}});
  TrimPendingInvalidations();
}

void Vm::ReconcileCore(int core_id) {
  uint64_t& epoch = core_epochs_[static_cast<size_t>(core_id)];
  if (epoch == code_epoch_) {
    return;
  }
  uint64_t evicted = 0;
  for (const PendingInvalidation& p : sb_pending_) {
    if (p.seq > epoch) {
      evicted += EvictSuperblocksOnCore(core_id, p.range.addr,
                                        p.range.addr + p.range.len);
    }
  }
  epoch = code_epoch_;
  if (evicted > 0) {
    sb_cursors_[static_cast<size_t>(core_id)].block = nullptr;
    ++sb_epoch_;
  }
  TrimPendingInvalidations();
}

void Vm::TrimPendingInvalidations() {
  uint64_t min_epoch = code_epoch_;
  for (uint64_t e : core_epochs_) {
    min_epoch = std::min(min_epoch, e);
  }
  sb_pending_.erase(
      std::remove_if(sb_pending_.begin(), sb_pending_.end(),
                     [min_epoch](const PendingInvalidation& p) {
                       return p.seq <= min_epoch;
                     }),
      sb_pending_.end());
  // Backstop for a core that never steps again (halted without the commit
  // protocol reconciling it): past a bound, push the queue out eagerly so it
  // cannot grow without limit.
  if (sb_pending_.size() > 256) {
    for (int c = 0; c < num_cores(); ++c) {
      ReconcileCore(c);
    }
  }
}

void Vm::set_superblock_invalidation(SuperblockInvalidation mode) {
  if (mode == sb_invalidation_) {
    return;
  }
  for (int c = 0; c < num_cores(); ++c) {
    ReconcileCore(c);
  }
  sb_pending_.clear();
  sb_invalidation_ = mode;
}

void Vm::ClearSuperblocks() {
  for (auto& cache : sb_caches_) {
    sb_evicted_ += cache.size();
    cache.clear();
  }
  for (SuperblockCursor& cursor : sb_cursors_) {
    cursor.block = nullptr;
  }
  ++sb_epoch_;
  ++code_epoch_;
  sb_pending_.clear();
  for (uint64_t& e : core_epochs_) {
    e = code_epoch_;
  }
  memory_.ClearCodePageMarks();
}

uint64_t Vm::icache_entries() const {
  uint64_t total = 0;
  for (const auto& icache : icaches_) {
    total += icache.size();
  }
  return total;
}

bool Vm::AtSafePoint(int core_id, const std::vector<CodeRange>& ranges) const {
  const uint64_t pc = cores_[static_cast<size_t>(core_id)].pc;
  for (const CodeRange& range : ranges) {
    if (range.Contains(pc)) {
      return false;
    }
  }
  return true;
}

void Vm::FlushPredictors() {
  for (Core& core : cores_) {
    core.predictor.Flush();
  }
}

std::optional<VmExit> Vm::Step(int core_id) {
  // The threaded tier only accelerates Run: a single Step is one instruction
  // by contract, so it goes through the superblock path (which shares the
  // block caches with the threaded loop) and never enters a compiled trace.
  if (dispatch_engine_ != DispatchEngine::kLegacy) {
    return StepSuperblock(core_id);
  }
  return StepLegacy(core_id);
}

std::optional<VmExit> Vm::StepLegacy(int core_id) {
  active_core_ = core_id;
  if (core_epochs_[static_cast<size_t>(core_id)] != code_epoch_) {
    ReconcileCore(core_id);
  }
  Core& core = cores_[static_cast<size_t>(core_id)];
  if (core.halted) {
    VmExit exit;
    exit.kind = VmExit::Kind::kHalt;
    return exit;
  }

  const uint64_t pc = core.pc;

  // Fetch: consult this core's decoded-instruction cache first. A cache hit
  // skips the memory read entirely — this is what makes un-flushed
  // self-modification visible as stale execution, per core.
  auto& icache = icaches_[static_cast<size_t>(core_id)];
  const CachedInsn* cached = nullptr;
  auto it = icache.find(pc);
  if (it != icache.end()) {
    cached = &it->second;
  }
  Insn insn;
  if (cached != nullptr) {
    if (stale_fetch_detection_ &&
        std::memcmp(cached->bytes.data(), memory_.raw(pc), cached->insn.size) != 0) {
      ++core.stale_fetches;
      VmExit exit;
      exit.kind = VmExit::Kind::kFault;
      exit.fault = Fault{FaultKind::kStaleFetch, pc, pc};
      return exit;
    }
    insn = cached->insn;
  } else {
    // Permission check happens on the fill path, like a hardware ifetch.
    Fault exec_fault = memory_.CheckExec(pc, 1);
    if (exec_fault.ok()) {
      Result<Insn> decoded = Decode(memory_.raw(pc), memory_.size() - pc);
      if (!decoded.ok()) {
        exec_fault = Fault{FaultKind::kBadOpcode, pc, pc};
      } else {
        exec_fault = memory_.CheckExec(pc, decoded->size);
        if (exec_fault.ok()) {
          insn = *decoded;
          CachedInsn entry{insn, {}};
          std::memcpy(entry.bytes.data(), memory_.raw(pc), insn.size);
          icache.emplace(pc, entry);
        }
      }
    }
    if (!exec_fault.ok()) {
      exec_fault.pc = pc;
      VmExit exit;
      exit.kind = VmExit::Kind::kFault;
      exit.fault = exec_fault;
      return exit;
    }
  }

  if (trace_hook_) {
    trace_hook_(TraceEntry{core_id, pc, insn, core.ticks});
  }

  std::optional<VmExit> exit = Execute(core, insn);
  if (!exit.has_value() || exit->kind == VmExit::Kind::kVmCall ||
      exit->kind == VmExit::Kind::kHalt) {
    ++core.instret;
  }
  return exit;
}

VmExit Vm::Run(int core_id, uint64_t max_steps) {
  if (dispatch_engine_ == DispatchEngine::kSuperblock) {
    return RunSuperblock(core_id, max_steps);
  }
  if (dispatch_engine_ == DispatchEngine::kThreaded) {
    return RunThreaded(core_id, max_steps);
  }
  for (uint64_t i = 0; i < max_steps; ++i) {
    std::optional<VmExit> exit = StepLegacy(core_id);
    if (exit.has_value()) {
      return *exit;
    }
  }
  VmExit exit;
  exit.kind = VmExit::Kind::kStepLimit;
  return exit;
}

Superblock* Vm::LookupOrBuildSuperblock(int core_id, uint64_t pc,
                                        VmExit* fault_exit) {
  auto& cache = sb_caches_[static_cast<size_t>(core_id)];
  auto it = cache.find(pc);
  if (it != cache.end()) {
    return it->second.get();
  }

  auto& icache = icaches_[static_cast<size_t>(core_id)];
  auto block = std::make_unique<Superblock>();
  block->entry = pc;
  const uint64_t entry_page = pc / kPageSize;

  uint64_t p = pc;
  while (block->insns.size() < kMaxSuperblockInsns) {
    SuperblockInsn el;
    el.pc = p;
    auto hit = icache.find(p);
    if (hit != icache.end()) {
      // Legacy hit path: use the cached decode verbatim — if it is stale,
      // the block inherits the staleness (and its fill-time bytes for the
      // detector), exactly like the per-instruction engine would.
      el.insn = hit->second.insn;
      el.bytes = hit->second.bytes;
      el.from_icache = true;
      el.filled = true;
    } else {
      // Legacy miss path, minus the icache fill: permission check, decode,
      // full-width permission check. The fill happens lazily at the first
      // dispatch of this element so icache contents evolve exactly as they
      // would under the legacy engine.
      Fault exec_fault = memory_.CheckExec(p, 1);
      if (exec_fault.ok()) {
        Result<Insn> decoded = Decode(memory_.raw(p), memory_.size() - p);
        if (!decoded.ok()) {
          exec_fault = Fault{FaultKind::kBadOpcode, p, p};
        } else {
          exec_fault = memory_.CheckExec(p, decoded->size);
          if (exec_fault.ok()) {
            el.insn = *decoded;
            std::memcpy(el.bytes.data(), memory_.raw(p), el.insn.size);
          }
        }
      }
      if (!exec_fault.ok()) {
        if (block->insns.empty()) {
          // Fault on the entry instruction: report it now, build nothing.
          exec_fault.pc = p;
          fault_exit->kind = VmExit::Kind::kFault;
          fault_exit->fault = exec_fault;
          return nullptr;
        }
        // Mid-trace fault: truncate the block here; the fault is raised (or
        // not — control may never fall through) when dispatch reaches p.
        break;
      }
    }
    const uint64_t next = p + el.insn.size;
    const bool ends = EndsSuperblock(el.insn.op);
    PrecomputeMemShape(&el);
    block->insns.push_back(el);
    p = next;
    if (ends || next / kPageSize != entry_page) {
      break;
    }
  }

  block->end = p;
  memory_.MarkCodePages(block->entry, block->end - block->entry);
  ++sb_built_;
  Superblock* raw = block.get();
  cache.emplace(pc, std::move(block));
  return raw;
}

std::optional<VmExit> Vm::DispatchSuperblockInsn(int core_id, Core& core,
                                                 Superblock* block, size_t index,
                                                 bool* block_live) {
  SuperblockInsn& el = block->insns[index];
  const uint64_t pc = el.pc;

  if (el.from_icache) {
    // Mirrors the legacy hit path: the eviction invariant guarantees memory
    // under the block is unchanged since build time, so comparing against the
    // element's fill-time bytes gives the same verdict as a fresh icache
    // probe would.
    if (stale_fetch_detection_ &&
        std::memcmp(el.bytes.data(), memory_.raw(pc), el.insn.size) != 0) {
      ++core.stale_fetches;
      VmExit exit;
      exit.kind = VmExit::Kind::kFault;
      exit.fault = Fault{FaultKind::kStaleFetch, pc, pc};
      return exit;
    }
  } else if (!el.filled) {
    // Legacy fill moment: the first fetch of a freshly decoded instruction
    // populates the per-instruction icache.
    CachedInsn entry{el.insn, el.bytes};
    icaches_[static_cast<size_t>(core_id)].emplace(pc, entry);
    el.filled = true;
  }

  if (trace_hook_) {
    trace_hook_(TraceEntry{core_id, pc, el.insn, core.ticks});
  }

  // Copy out before Execute: a store into this block's own text evicts the
  // block (deleting `el`) while the instruction is still executing.
  const Insn insn = el.insn;
  const uint64_t epoch = sb_epoch_;
  std::optional<VmExit> exit = Execute(core, insn);
  if (!exit.has_value() || exit->kind == VmExit::Kind::kVmCall ||
      exit->kind == VmExit::Kind::kHalt) {
    ++core.instret;
  }
  *block_live = sb_epoch_ == epoch;
  return exit;
}

std::optional<VmExit> Vm::StepSuperblock(int core_id) {
  active_core_ = core_id;
  if (core_epochs_[static_cast<size_t>(core_id)] != code_epoch_) {
    // Queued invalidations land before the cursor or cache can be consulted,
    // so a core can never dispatch from a block a remote write stalled.
    ReconcileCore(core_id);
  }
  Core& core = cores_[static_cast<size_t>(core_id)];
  if (core.halted) {
    VmExit exit;
    exit.kind = VmExit::Kind::kHalt;
    return exit;
  }

  SuperblockCursor& cursor = sb_cursors_[static_cast<size_t>(core_id)];
  Superblock* block = nullptr;
  size_t index = 0;
  if (cursor.block != nullptr && cursor.index < cursor.block->insns.size() &&
      cursor.block->insns[cursor.index].pc == core.pc) {
    block = cursor.block;
    index = cursor.index;
  } else {
    VmExit fault_exit;
    block = LookupOrBuildSuperblock(core_id, core.pc, &fault_exit);
    if (block == nullptr) {
      cursor.block = nullptr;
      return fault_exit;
    }
    index = 0;
  }

  bool block_live = true;
  std::optional<VmExit> exit =
      DispatchSuperblockInsn(core_id, core, block, index, &block_live);

  // Leave the cursor at the fall-through successor when execution stayed
  // inside the block; otherwise the next step re-resolves via the cache.
  if (!exit.has_value() && block_live && index + 1 < block->insns.size() &&
      block->insns[index + 1].pc == core.pc) {
    cursor.block = block;
    cursor.index = index + 1;
  } else if (block_live) {
    cursor.block = nullptr;
  }
  return exit;
}

VmExit Vm::RunSuperblock(int core_id, uint64_t max_steps) {
  active_core_ = core_id;
  if (core_epochs_[static_cast<size_t>(core_id)] != code_epoch_) {
    ReconcileCore(core_id);
  }
  Core& core = cores_[static_cast<size_t>(core_id)];
  SuperblockCursor& cursor = sb_cursors_[static_cast<size_t>(core_id)];
  uint64_t steps = 0;
  // The block whose walk just ended, for successor chaining. Only valid while
  // no eviction has happened since it was set (the walk clears it otherwise).
  Superblock* prev = nullptr;

  while (true) {
    // Budget before halt, like the legacy Run loop: an exhausted budget wins
    // even on a halted core.
    if (steps >= max_steps) {
      VmExit exit;
      exit.kind = VmExit::Kind::kStepLimit;
      return exit;
    }
    if (core.halted) {
      VmExit exit;
      exit.kind = VmExit::Kind::kHalt;
      return exit;
    }

    Superblock* block = nullptr;
    size_t index = 0;
    if (cursor.block != nullptr && cursor.index < cursor.block->insns.size() &&
        cursor.block->insns[cursor.index].pc == core.pc) {
      block = cursor.block;
      index = cursor.index;
    } else if (prev != nullptr && prev->succ != nullptr &&
               prev->succ_epoch == sb_epoch_ && prev->succ_pc == core.pc) {
      // Chained successor: steady-state loops resolve without a cache probe.
      block = prev->succ;
    } else {
      VmExit fault_exit;
      block = LookupOrBuildSuperblock(core_id, core.pc, &fault_exit);
      if (block == nullptr) {
        cursor.block = nullptr;
        return fault_exit;
      }
      if (prev != nullptr) {
        prev->succ = block;
        prev->succ_pc = core.pc;
        prev->succ_epoch = sb_epoch_;
      }
    }
    cursor.block = nullptr;

    const size_t n = block->insns.size();

    // Generic walk, when any per-instruction observation is active: one
    // budget check and one dispatch per instruction, no hash probes.
    if (stale_fetch_detection_ || trace_hook_) {
      bool evicted = false;
      while (index < n && block->insns[index].pc == core.pc) {
        if (steps >= max_steps) {
          // Park the cursor so a later Run/Step resumes without a probe.
          cursor.block = block;
          cursor.index = index;
          VmExit exit;
          exit.kind = VmExit::Kind::kStepLimit;
          return exit;
        }
        bool block_live = true;
        std::optional<VmExit> exit =
            DispatchSuperblockInsn(core_id, core, block, index, &block_live);
        ++steps;
        if (exit.has_value()) {
          return *exit;
        }
        if (!block_live) {
          evicted = true;
          break;  // the instruction evicted its own block; re-resolve
        }
        ++index;
      }
      prev = evicted ? nullptr : block;
      continue;
    }

    // Fast walk: the common ops are interpreted inline, mirroring Execute()
    // case for case (same tick charges, same operation order, same fault
    // construction — the differential suite pins this). Everything rare or
    // exit-producing falls back to Execute() in the default case. Within a
    // block, consecutive elements are fall-through by construction, so no
    // per-instruction pc check is needed: only block-ending ops redirect pc,
    // and they are always the last element. The Insn is copied out before any
    // memory write because a store into this block's own text evicts it; ops
    // that can write memory re-check sb_epoch_ and leave the walk when their
    // own block died.
    {
      auto& icache = icaches_[static_cast<size_t>(core_id)];
      const CostModel& cm = cost_model_;
      uint64_t* regs = core.regs;
      const uint64_t epoch = sb_epoch_;
      bool evicted = false;
      auto fault_exit = [&](Fault f) {
        f.pc = core.pc;
        VmExit exit;
        exit.kind = VmExit::Kind::kFault;
        exit.fault = f;
        return exit;
      };
      while (index < n) {
        if (steps >= max_steps) {
          cursor.block = block;
          cursor.index = index;
          VmExit exit;
          exit.kind = VmExit::Kind::kStepLimit;
          return exit;
        }
        SuperblockInsn& el = block->insns[index];
        if (!el.filled) {
          // Legacy fill moment: the first fetch of a freshly decoded
          // instruction populates the per-instruction icache.
          icache.emplace(el.pc, CachedInsn{el.insn, el.bytes});
          el.filled = true;
        }
        const Insn insn = el.insn;
        const int mem_width = el.mem_width;
        const bool mem_sign = el.mem_sign;
        const uint64_t next = core.pc + insn.size;
        bool leave = false;
        switch (insn.op) {
          case Op::kMovRI:
            regs[insn.a] = static_cast<uint64_t>(insn.imm);
            core.ticks += cm.mov;
            core.pc = next;
            break;
          case Op::kMovRR:
            regs[insn.a] = regs[insn.b];
            core.ticks += cm.mov;
            core.pc = next;
            break;
          case Op::kLd8U:
          case Op::kLd8S:
          case Op::kLd16U:
          case Op::kLd16S:
          case Op::kLd32U:
          case Op::kLd32S:
          case Op::kLd64: {
            const uint64_t addr = regs[insn.b] + static_cast<uint64_t>(insn.imm);
            uint64_t value = 0;
            Fault f = memory_.Read(addr, mem_width, &value);
            if (!f.ok()) {
              return fault_exit(f);
            }
            regs[insn.a] = mem_sign
                               ? static_cast<uint64_t>(SignExtend(value, mem_width))
                               : value;
            core.ticks += cm.load;
            core.pc = next;
            break;
          }
          case Op::kSt8:
          case Op::kSt16:
          case Op::kSt32:
          case Op::kSt64: {
            const uint64_t addr = regs[insn.b] + static_cast<uint64_t>(insn.imm);
            Fault f = memory_.Write(addr, mem_width, regs[insn.a]);
            if (!f.ok()) {
              return fault_exit(f);
            }
            core.ticks += cm.store;
            core.pc = next;
            leave = sb_epoch_ != epoch;
            break;
          }
          case Op::kLdg: {
            uint64_t value = 0;
            Fault f = memory_.Read(static_cast<uint64_t>(insn.imm), mem_width, &value);
            if (!f.ok()) {
              return fault_exit(f);
            }
            regs[insn.a] = mem_sign
                               ? static_cast<uint64_t>(SignExtend(value, mem_width))
                               : value;
            core.ticks += cm.global_load;
            core.pc = next;
            break;
          }
          case Op::kStg: {
            Fault f =
                memory_.Write(static_cast<uint64_t>(insn.imm), mem_width, regs[insn.a]);
            if (!f.ok()) {
              return fault_exit(f);
            }
            core.ticks += cm.global_store;
            core.pc = next;
            leave = sb_epoch_ != epoch;
            break;
          }
          case Op::kAdd:
            regs[insn.a] += regs[insn.b];
            core.ticks += cm.alu;
            core.pc = next;
            break;
          case Op::kSub:
            regs[insn.a] -= regs[insn.b];
            core.ticks += cm.alu;
            core.pc = next;
            break;
          case Op::kMul:
            regs[insn.a] *= regs[insn.b];
            core.ticks += cm.alu;
            core.pc = next;
            break;
          case Op::kUDiv:
            if (regs[insn.b] == 0) {
              return fault_exit(Fault{FaultKind::kDivByZero, 0, 0});
            }
            regs[insn.a] /= regs[insn.b];
            core.ticks += cm.alu;
            core.pc = next;
            break;
          case Op::kURem:
            if (regs[insn.b] == 0) {
              return fault_exit(Fault{FaultKind::kDivByZero, 0, 0});
            }
            regs[insn.a] %= regs[insn.b];
            core.ticks += cm.alu;
            core.pc = next;
            break;
          case Op::kSDiv: {
            if (regs[insn.b] == 0) {
              return fault_exit(Fault{FaultKind::kDivByZero, 0, 0});
            }
            const auto lhs = static_cast<int64_t>(regs[insn.a]);
            const auto rhs = static_cast<int64_t>(regs[insn.b]);
            regs[insn.a] = (lhs == INT64_MIN && rhs == -1)
                               ? static_cast<uint64_t>(lhs)
                               : static_cast<uint64_t>(lhs / rhs);
            core.ticks += cm.alu;
            core.pc = next;
            break;
          }
          case Op::kSRem: {
            if (regs[insn.b] == 0) {
              return fault_exit(Fault{FaultKind::kDivByZero, 0, 0});
            }
            const auto lhs = static_cast<int64_t>(regs[insn.a]);
            const auto rhs = static_cast<int64_t>(regs[insn.b]);
            regs[insn.a] =
                (lhs == INT64_MIN && rhs == -1) ? 0 : static_cast<uint64_t>(lhs % rhs);
            core.ticks += cm.alu;
            core.pc = next;
            break;
          }
          case Op::kAnd:
            regs[insn.a] &= regs[insn.b];
            core.ticks += cm.alu;
            core.pc = next;
            break;
          case Op::kOr:
            regs[insn.a] |= regs[insn.b];
            core.ticks += cm.alu;
            core.pc = next;
            break;
          case Op::kXor:
            regs[insn.a] ^= regs[insn.b];
            core.ticks += cm.alu;
            core.pc = next;
            break;
          case Op::kShl:
            regs[insn.a] <<= (regs[insn.b] & 63);
            core.ticks += cm.alu;
            core.pc = next;
            break;
          case Op::kShr:
            regs[insn.a] >>= (regs[insn.b] & 63);
            core.ticks += cm.alu;
            core.pc = next;
            break;
          case Op::kSar:
            regs[insn.a] = static_cast<uint64_t>(static_cast<int64_t>(regs[insn.a]) >>
                                                 (regs[insn.b] & 63));
            core.ticks += cm.alu;
            core.pc = next;
            break;
          case Op::kAddI:
            regs[insn.a] += static_cast<uint64_t>(insn.imm);
            core.ticks += cm.alu;
            core.pc = next;
            break;
          case Op::kSubI:
            regs[insn.a] -= static_cast<uint64_t>(insn.imm);
            core.ticks += cm.alu;
            core.pc = next;
            break;
          case Op::kMulI:
            regs[insn.a] *= static_cast<uint64_t>(insn.imm);
            core.ticks += cm.alu;
            core.pc = next;
            break;
          case Op::kAndI:
            regs[insn.a] &= static_cast<uint64_t>(insn.imm);
            core.ticks += cm.alu;
            core.pc = next;
            break;
          case Op::kOrI:
            regs[insn.a] |= static_cast<uint64_t>(insn.imm);
            core.ticks += cm.alu;
            core.pc = next;
            break;
          case Op::kXorI:
            regs[insn.a] ^= static_cast<uint64_t>(insn.imm);
            core.ticks += cm.alu;
            core.pc = next;
            break;
          case Op::kShlI:
            regs[insn.a] <<= insn.imm;
            core.ticks += cm.alu;
            core.pc = next;
            break;
          case Op::kShrI:
            regs[insn.a] >>= insn.imm;
            core.ticks += cm.alu;
            core.pc = next;
            break;
          case Op::kSarI:
            regs[insn.a] =
                static_cast<uint64_t>(static_cast<int64_t>(regs[insn.a]) >> insn.imm);
            core.ticks += cm.alu;
            core.pc = next;
            break;
          case Op::kNot:
            regs[insn.a] = ~regs[insn.a];
            core.ticks += cm.alu;
            core.pc = next;
            break;
          case Op::kNeg:
            regs[insn.a] = ~regs[insn.a] + 1;
            core.ticks += cm.alu;
            core.pc = next;
            break;
          case Op::kCmp: {
            const uint64_t a = regs[insn.a];
            const uint64_t b = regs[insn.b];
            core.zf = a == b;
            core.lt_signed = static_cast<int64_t>(a) < static_cast<int64_t>(b);
            core.lt_unsigned = a < b;
            core.ticks += cm.cmp;
            core.pc = next;
            break;
          }
          case Op::kCmpI: {
            const uint64_t a = regs[insn.a];
            const auto b = static_cast<uint64_t>(insn.imm);
            core.zf = a == b;
            core.lt_signed = static_cast<int64_t>(a) < static_cast<int64_t>(b);
            core.lt_unsigned = a < b;
            core.ticks += cm.cmp;
            core.pc = next;
            break;
          }
          case Op::kSetCC:
            regs[insn.a] = EvalCond(core, insn.cc) ? 1 : 0;
            core.ticks += cm.setcc;
            core.pc = next;
            break;
          case Op::kJmp:
            core.pc = next + static_cast<uint64_t>(insn.imm);
            core.ticks += cm.jmp;
            break;
          case Op::kJcc: {
            const bool taken = EvalCond(core, insn.cc);
            const bool predicted = core.predictor.PredictCond(core.pc);
            core.predictor.UpdateCond(core.pc, taken);
            ++core.cond_branches;
            core.ticks += cm.branch_predicted;
            if (predicted != taken) {
              core.ticks += cm.branch_mispredict_penalty;
              ++core.cond_mispredicts;
            }
            core.pc = taken ? next + static_cast<uint64_t>(insn.imm) : next;
            break;
          }
          case Op::kCall: {
            regs[kRegSP] -= 8;
            Fault f = memory_.Write(regs[kRegSP], 8, next);
            if (!f.ok()) {
              regs[kRegSP] += 8;
              return fault_exit(f);
            }
            core.predictor.PushRet(next);
            core.pc = next + static_cast<uint64_t>(insn.imm);
            core.ticks += cm.call;
            // A stack push can land on a marked code page and evict this
            // block; `leave` keeps `prev` from caching a dead pointer.
            leave = sb_epoch_ != epoch;
            break;
          }
          case Op::kCallR: {
            const uint64_t target = regs[insn.a];
            regs[kRegSP] -= 8;
            Fault f = memory_.Write(regs[kRegSP], 8, next);
            if (!f.ok()) {
              regs[kRegSP] += 8;
              return fault_exit(f);
            }
            core.predictor.PushRet(next);
            ++core.indirect_calls;
            core.ticks += cm.call_indirect;
            if (!core.predictor.PredictAndUpdateIndirect(core.pc, target)) {
              core.ticks += cm.indirect_mispredict_penalty;
              ++core.indirect_mispredicts;
            }
            core.pc = target;
            leave = sb_epoch_ != epoch;
            break;
          }
          case Op::kCallM: {
            uint64_t target = 0;
            Fault lf = memory_.Read(static_cast<uint64_t>(insn.imm), 8, &target);
            if (!lf.ok()) {
              return fault_exit(lf);
            }
            regs[kRegSP] -= 8;
            Fault f = memory_.Write(regs[kRegSP], 8, next);
            if (!f.ok()) {
              regs[kRegSP] += 8;
              return fault_exit(f);
            }
            core.predictor.PushRet(next);
            ++core.indirect_calls;
            core.ticks += cm.call_indirect;
            if (!core.predictor.PredictAndUpdateIndirect(core.pc, target)) {
              core.ticks += cm.indirect_mispredict_penalty;
              ++core.indirect_mispredicts;
            }
            core.pc = target;
            leave = sb_epoch_ != epoch;
            break;
          }
          case Op::kRet: {
            uint64_t target = 0;
            Fault f = memory_.Read(regs[kRegSP], 8, &target);
            if (!f.ok()) {
              return fault_exit(f);
            }
            regs[kRegSP] += 8;
            core.ticks += cm.ret;
            if (!core.predictor.PopRetMatches(target)) {
              core.ticks += cm.branch_mispredict_penalty;
              ++core.ret_mispredicts;
            }
            core.pc = target;
            break;
          }
          case Op::kPush: {
            regs[kRegSP] -= 8;
            Fault f = memory_.Write(regs[kRegSP], 8, regs[insn.a]);
            if (!f.ok()) {
              regs[kRegSP] += 8;
              return fault_exit(f);
            }
            core.ticks += cm.push;
            core.pc = next;
            leave = sb_epoch_ != epoch;
            break;
          }
          case Op::kPop: {
            uint64_t value = 0;
            Fault f = memory_.Read(regs[kRegSP], 8, &value);
            if (!f.ok()) {
              return fault_exit(f);
            }
            regs[insn.a] = value;
            regs[kRegSP] += 8;
            core.ticks += cm.pop;
            core.pc = next;
            break;
          }
          case Op::kNop:
            core.ticks += cm.nop;
            core.pc = next;
            break;
          case Op::kPause:
            core.ticks += cm.pause;
            core.pc = next;
            break;
          case Op::kFence:
            core.ticks += cm.fence;
            core.pc = next;
            break;
          case Op::kSti:
            core.interrupts_enabled = true;
            if (hypervisor_guest_) {
              core.ticks += cm.sti_cli_guest_trap;
              ++core.priv_traps;
            } else {
              core.ticks += cm.sti_cli_native;
            }
            core.pc = next;
            break;
          case Op::kCli:
            core.interrupts_enabled = false;
            if (hypervisor_guest_) {
              core.ticks += cm.sti_cli_guest_trap;
              ++core.priv_traps;
            } else {
              core.ticks += cm.sti_cli_native;
            }
            core.pc = next;
            break;
          case Op::kXchg: {
            const uint64_t addr = regs[insn.b];
            uint64_t old = 0;
            Fault f = memory_.Read(addr, 4, &old);
            if (!f.ok()) {
              return fault_exit(f);
            }
            f = memory_.Write(addr, 4, regs[insn.a]);
            if (!f.ok()) {
              return fault_exit(f);
            }
            regs[insn.a] = old;
            ++core.atomic_ops;
            core.ticks += cm.xchg_atomic;
            core.pc = next;
            leave = sb_epoch_ != epoch;
            break;
          }
          case Op::kRdtsc:
            regs[insn.a] = core.ticks / kTicksPerCycle;
            core.ticks += cm.rdtsc;
            core.pc = next;
            break;
          case Op::kHypercall:
            switch (insn.imm) {
              case 0:
                core.interrupts_enabled = true;
                break;
              case 1:
                core.interrupts_enabled = false;
                break;
              default:
                break;
            }
            core.ticks += cm.hypercall;
            core.pc = next;
            break;
          default: {
            // Rare / exit-producing / faultable-complex ops (divisions,
            // indirect calls, HLT, VMCALL, BKPT, invalid): the shared
            // Execute() switch is the single source of truth for these.
            std::optional<VmExit> exit = Execute(core, insn);
            if (exit.has_value()) {
              if (exit->kind == VmExit::Kind::kVmCall ||
                  exit->kind == VmExit::Kind::kHalt) {
                ++core.instret;
              }
              return *exit;
            }
            leave = sb_epoch_ != epoch;
            break;
          }
        }
        ++core.instret;
        ++steps;
        ++index;
        if (leave) {
          evicted = true;
          break;  // a store evicted this block; re-resolve
        }
      }
      prev = evicted ? nullptr : block;
    }
  }
}

Vm::WalkResult Vm::WalkSuperblock(int core_id, Core& core, Superblock* block,
                                  size_t index, uint64_t max_steps,
                                  uint64_t* steps, VmExit* exit) {
  SuperblockCursor& cursor = sb_cursors_[static_cast<size_t>(core_id)];
  const size_t n = block->insns.size();
  while (index < n && block->insns[index].pc == core.pc) {
    if (*steps >= max_steps) {
      // Park the cursor so a later Run/Step resumes without a probe.
      cursor.block = block;
      cursor.index = index;
      exit->kind = VmExit::Kind::kStepLimit;
      return WalkResult::kExit;
    }
    bool block_live = true;
    std::optional<VmExit> e =
        DispatchSuperblockInsn(core_id, core, block, index, &block_live);
    ++*steps;
    if (e.has_value()) {
      *exit = *e;
      return WalkResult::kExit;
    }
    if (!block_live) {
      return WalkResult::kEvicted;
    }
    ++index;
  }
  return WalkResult::kEndOfBlock;
}

std::optional<VmExit> Vm::Execute(Core& core, const Insn& insn) {
  const CostModel& cm = cost_model_;
  const uint64_t next = core.pc + insn.size;
  uint64_t* regs = core.regs;

  auto fault_exit = [&](Fault f) {
    f.pc = core.pc;
    VmExit exit;
    exit.kind = VmExit::Kind::kFault;
    exit.fault = f;
    return exit;
  };

  switch (insn.op) {
    case Op::kMovRI:
      regs[insn.a] = static_cast<uint64_t>(insn.imm);
      core.ticks += cm.mov;
      break;
    case Op::kMovRR:
      regs[insn.a] = regs[insn.b];
      core.ticks += cm.mov;
      break;

    case Op::kLd8U:
    case Op::kLd8S:
    case Op::kLd16U:
    case Op::kLd16S:
    case Op::kLd32U:
    case Op::kLd32S:
    case Op::kLd64: {
      int width = 8;
      bool sign = false;
      switch (insn.op) {
        case Op::kLd8U: width = 1; break;
        case Op::kLd8S: width = 1; sign = true; break;
        case Op::kLd16U: width = 2; break;
        case Op::kLd16S: width = 2; sign = true; break;
        case Op::kLd32U: width = 4; break;
        case Op::kLd32S: width = 4; sign = true; break;
        default: break;
      }
      const uint64_t addr = regs[insn.b] + static_cast<uint64_t>(insn.imm);
      uint64_t value = 0;
      Fault f = memory_.Read(addr, width, &value);
      if (!f.ok()) {
        return fault_exit(f);
      }
      regs[insn.a] = sign ? static_cast<uint64_t>(SignExtend(value, width)) : value;
      core.ticks += cm.load;
      break;
    }
    case Op::kSt8:
    case Op::kSt16:
    case Op::kSt32:
    case Op::kSt64: {
      int width = 8;
      switch (insn.op) {
        case Op::kSt8: width = 1; break;
        case Op::kSt16: width = 2; break;
        case Op::kSt32: width = 4; break;
        default: break;
      }
      const uint64_t addr = regs[insn.b] + static_cast<uint64_t>(insn.imm);
      Fault f = memory_.Write(addr, width, regs[insn.a]);
      if (!f.ok()) {
        return fault_exit(f);
      }
      core.ticks += cm.store;
      break;
    }

    case Op::kLdg: {
      const int width = GWidthBytes(insn.gw);
      uint64_t value = 0;
      Fault f = memory_.Read(static_cast<uint64_t>(insn.imm), width, &value);
      if (!f.ok()) {
        return fault_exit(f);
      }
      regs[insn.a] = GWidthSigned(insn.gw)
                         ? static_cast<uint64_t>(SignExtend(value, width))
                         : value;
      core.ticks += cm.global_load;
      break;
    }
    case Op::kStg: {
      const int width = GWidthBytes(insn.gw);
      Fault f = memory_.Write(static_cast<uint64_t>(insn.imm), width, regs[insn.a]);
      if (!f.ok()) {
        return fault_exit(f);
      }
      core.ticks += cm.global_store;
      break;
    }

    case Op::kAdd:
      regs[insn.a] += regs[insn.b];
      core.ticks += cm.alu;
      break;
    case Op::kSub:
      regs[insn.a] -= regs[insn.b];
      core.ticks += cm.alu;
      break;
    case Op::kMul:
      regs[insn.a] *= regs[insn.b];
      core.ticks += cm.alu;
      break;
    case Op::kUDiv:
      if (regs[insn.b] == 0) {
        return fault_exit(Fault{FaultKind::kDivByZero, 0, 0});
      }
      regs[insn.a] /= regs[insn.b];
      core.ticks += cm.alu;
      break;
    case Op::kURem:
      if (regs[insn.b] == 0) {
        return fault_exit(Fault{FaultKind::kDivByZero, 0, 0});
      }
      regs[insn.a] %= regs[insn.b];
      core.ticks += cm.alu;
      break;
    case Op::kSDiv: {
      if (regs[insn.b] == 0) {
        return fault_exit(Fault{FaultKind::kDivByZero, 0, 0});
      }
      const auto lhs = static_cast<int64_t>(regs[insn.a]);
      const auto rhs = static_cast<int64_t>(regs[insn.b]);
      regs[insn.a] = (lhs == INT64_MIN && rhs == -1) ? static_cast<uint64_t>(lhs)
                                                     : static_cast<uint64_t>(lhs / rhs);
      core.ticks += cm.alu;
      break;
    }
    case Op::kSRem: {
      if (regs[insn.b] == 0) {
        return fault_exit(Fault{FaultKind::kDivByZero, 0, 0});
      }
      const auto lhs = static_cast<int64_t>(regs[insn.a]);
      const auto rhs = static_cast<int64_t>(regs[insn.b]);
      regs[insn.a] = (lhs == INT64_MIN && rhs == -1) ? 0 : static_cast<uint64_t>(lhs % rhs);
      core.ticks += cm.alu;
      break;
    }
    case Op::kAnd:
      regs[insn.a] &= regs[insn.b];
      core.ticks += cm.alu;
      break;
    case Op::kOr:
      regs[insn.a] |= regs[insn.b];
      core.ticks += cm.alu;
      break;
    case Op::kXor:
      regs[insn.a] ^= regs[insn.b];
      core.ticks += cm.alu;
      break;
    case Op::kShl:
      regs[insn.a] <<= (regs[insn.b] & 63);
      core.ticks += cm.alu;
      break;
    case Op::kShr:
      regs[insn.a] >>= (regs[insn.b] & 63);
      core.ticks += cm.alu;
      break;
    case Op::kSar:
      regs[insn.a] = static_cast<uint64_t>(static_cast<int64_t>(regs[insn.a]) >>
                                           (regs[insn.b] & 63));
      core.ticks += cm.alu;
      break;

    case Op::kAddI:
      regs[insn.a] += static_cast<uint64_t>(insn.imm);
      core.ticks += cm.alu;
      break;
    case Op::kSubI:
      regs[insn.a] -= static_cast<uint64_t>(insn.imm);
      core.ticks += cm.alu;
      break;
    case Op::kMulI:
      regs[insn.a] *= static_cast<uint64_t>(insn.imm);
      core.ticks += cm.alu;
      break;
    case Op::kAndI:
      regs[insn.a] &= static_cast<uint64_t>(insn.imm);
      core.ticks += cm.alu;
      break;
    case Op::kOrI:
      regs[insn.a] |= static_cast<uint64_t>(insn.imm);
      core.ticks += cm.alu;
      break;
    case Op::kXorI:
      regs[insn.a] ^= static_cast<uint64_t>(insn.imm);
      core.ticks += cm.alu;
      break;
    case Op::kShlI:
      regs[insn.a] <<= insn.imm;
      core.ticks += cm.alu;
      break;
    case Op::kShrI:
      regs[insn.a] >>= insn.imm;
      core.ticks += cm.alu;
      break;
    case Op::kSarI:
      regs[insn.a] =
          static_cast<uint64_t>(static_cast<int64_t>(regs[insn.a]) >> insn.imm);
      core.ticks += cm.alu;
      break;
    case Op::kNot:
      regs[insn.a] = ~regs[insn.a];
      core.ticks += cm.alu;
      break;
    case Op::kNeg:
      regs[insn.a] = ~regs[insn.a] + 1;
      core.ticks += cm.alu;
      break;

    case Op::kCmp: {
      const uint64_t a = regs[insn.a];
      const uint64_t b = regs[insn.b];
      core.zf = a == b;
      core.lt_signed = static_cast<int64_t>(a) < static_cast<int64_t>(b);
      core.lt_unsigned = a < b;
      core.ticks += cm.cmp;
      break;
    }
    case Op::kCmpI: {
      const uint64_t a = regs[insn.a];
      const auto b = static_cast<uint64_t>(insn.imm);
      core.zf = a == b;
      core.lt_signed = static_cast<int64_t>(a) < static_cast<int64_t>(b);
      core.lt_unsigned = a < b;
      core.ticks += cm.cmp;
      break;
    }
    case Op::kSetCC:
      regs[insn.a] = EvalCond(core, insn.cc) ? 1 : 0;
      core.ticks += cm.setcc;
      break;

    case Op::kJmp:
      core.pc = next + static_cast<uint64_t>(insn.imm);
      core.ticks += cm.jmp;
      return std::nullopt;
    case Op::kJcc: {
      const bool taken = EvalCond(core, insn.cc);
      const bool predicted = core.predictor.PredictCond(core.pc);
      core.predictor.UpdateCond(core.pc, taken);
      ++core.cond_branches;
      core.ticks += cm.branch_predicted;
      if (predicted != taken) {
        core.ticks += cm.branch_mispredict_penalty;
        ++core.cond_mispredicts;
      }
      core.pc = taken ? next + static_cast<uint64_t>(insn.imm) : next;
      return std::nullopt;
    }
    case Op::kCall: {
      regs[kRegSP] -= 8;
      Fault f = memory_.Write(regs[kRegSP], 8, next);
      if (!f.ok()) {
        regs[kRegSP] += 8;
        return fault_exit(f);
      }
      core.predictor.PushRet(next);
      core.pc = next + static_cast<uint64_t>(insn.imm);
      core.ticks += cm.call;
      return std::nullopt;
    }
    case Op::kCallR: {
      const uint64_t target = regs[insn.a];
      regs[kRegSP] -= 8;
      Fault f = memory_.Write(regs[kRegSP], 8, next);
      if (!f.ok()) {
        regs[kRegSP] += 8;
        return fault_exit(f);
      }
      core.predictor.PushRet(next);
      ++core.indirect_calls;
      core.ticks += cm.call_indirect;
      if (!core.predictor.PredictAndUpdateIndirect(core.pc, target)) {
        core.ticks += cm.indirect_mispredict_penalty;
        ++core.indirect_mispredicts;
      }
      core.pc = target;
      return std::nullopt;
    }
    case Op::kCallM: {
      uint64_t target = 0;
      Fault lf = memory_.Read(static_cast<uint64_t>(insn.imm), 8, &target);
      if (!lf.ok()) {
        return fault_exit(lf);
      }
      regs[kRegSP] -= 8;
      Fault f = memory_.Write(regs[kRegSP], 8, next);
      if (!f.ok()) {
        regs[kRegSP] += 8;
        return fault_exit(f);
      }
      core.predictor.PushRet(next);
      ++core.indirect_calls;
      core.ticks += cm.call_indirect;
      if (!core.predictor.PredictAndUpdateIndirect(core.pc, target)) {
        core.ticks += cm.indirect_mispredict_penalty;
        ++core.indirect_mispredicts;
      }
      core.pc = target;
      return std::nullopt;
    }
    case Op::kRet: {
      uint64_t target = 0;
      Fault f = memory_.Read(regs[kRegSP], 8, &target);
      if (!f.ok()) {
        return fault_exit(f);
      }
      regs[kRegSP] += 8;
      core.ticks += cm.ret;
      if (!core.predictor.PopRetMatches(target)) {
        core.ticks += cm.branch_mispredict_penalty;
        ++core.ret_mispredicts;
      }
      core.pc = target;
      return std::nullopt;
    }
    case Op::kPush: {
      regs[kRegSP] -= 8;
      Fault f = memory_.Write(regs[kRegSP], 8, regs[insn.a]);
      if (!f.ok()) {
        regs[kRegSP] += 8;
        return fault_exit(f);
      }
      core.ticks += cm.push;
      break;
    }
    case Op::kPop: {
      uint64_t value = 0;
      Fault f = memory_.Read(regs[kRegSP], 8, &value);
      if (!f.ok()) {
        return fault_exit(f);
      }
      regs[insn.a] = value;
      regs[kRegSP] += 8;
      core.ticks += cm.pop;
      break;
    }

    case Op::kNop:
      core.ticks += cm.nop;
      break;
    case Op::kHlt: {
      core.halted = true;
      core.ticks += cm.hlt;
      core.pc = next;
      VmExit exit;
      exit.kind = VmExit::Kind::kHalt;
      return exit;
    }
    case Op::kPause:
      core.ticks += cm.pause;
      break;
    case Op::kFence:
      core.ticks += cm.fence;
      break;
    case Op::kSti:
      core.interrupts_enabled = true;
      if (hypervisor_guest_) {
        core.ticks += cm.sti_cli_guest_trap;
        ++core.priv_traps;
      } else {
        core.ticks += cm.sti_cli_native;
      }
      break;
    case Op::kCli:
      core.interrupts_enabled = false;
      if (hypervisor_guest_) {
        core.ticks += cm.sti_cli_guest_trap;
        ++core.priv_traps;
      } else {
        core.ticks += cm.sti_cli_native;
      }
      break;
    case Op::kXchg: {
      const uint64_t addr = regs[insn.b];
      uint64_t old = 0;
      Fault f = memory_.Read(addr, 4, &old);
      if (!f.ok()) {
        return fault_exit(f);
      }
      f = memory_.Write(addr, 4, regs[insn.a]);
      if (!f.ok()) {
        return fault_exit(f);
      }
      regs[insn.a] = old;
      ++core.atomic_ops;
      core.ticks += cm.xchg_atomic;
      break;
    }
    case Op::kRdtsc:
      regs[insn.a] = core.ticks / kTicksPerCycle;
      core.ticks += cm.rdtsc;
      break;
    case Op::kHypercall: {
      // Hypercall ABI: 0 = enable virtual interrupts, 1 = disable.
      switch (insn.imm) {
        case 0:
          core.interrupts_enabled = true;
          break;
        case 1:
          core.interrupts_enabled = false;
          break;
        default:
          break;
      }
      core.ticks += cm.hypercall;
      break;
    }
    case Op::kVmCall: {
      core.ticks += cm.vmcall;
      core.pc = next;
      VmExit exit;
      exit.kind = VmExit::Kind::kVmCall;
      exit.vmcall_code = static_cast<uint8_t>(insn.imm);
      return exit;
    }
    case Op::kBkpt: {
      // Trap to the host without retiring: pc stays at the BKPT byte, so a
      // resumed core refetches the (by then rewritten) site. The trap entry
      // cost is charged to the trapping core, as on x86 #BP.
      core.ticks += cm.bkpt_trap;
      ++core.bkpt_traps;
      VmExit exit;
      exit.kind = VmExit::Kind::kBreakpoint;
      return exit;
    }
    case Op::kInvalid:
      return fault_exit(Fault{FaultKind::kBadOpcode, core.pc, core.pc});
  }

  core.pc = next;
  return std::nullopt;
}

}  // namespace mv

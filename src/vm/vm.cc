#include "src/vm/vm.h"

#include <cstring>

#include "src/support/str.h"

namespace mv {

namespace {

int64_t SignExtend(uint64_t value, int width) {
  switch (width) {
    case 1:
      return static_cast<int8_t>(value);
    case 2:
      return static_cast<int16_t>(value);
    case 4:
      return static_cast<int32_t>(value);
    default:
      return static_cast<int64_t>(value);
  }
}

}  // namespace

std::string VmExit::ToString() const {
  switch (kind) {
    case Kind::kHalt:
      return "exit{halt}";
    case Kind::kVmCall:
      return StrFormat("exit{vmcall %u}", vmcall_code);
    case Kind::kFault:
      return StrFormat("exit{%s}", fault.ToString().c_str());
    case Kind::kStepLimit:
      return "exit{step-limit}";
    case Kind::kBreakpoint:
      return "exit{breakpoint}";
  }
  return "exit{?}";
}

Vm::Vm(uint64_t mem_size, int num_cores) : memory_(mem_size) {
  cores_.resize(static_cast<size_t>(num_cores));
  icaches_.resize(static_cast<size_t>(num_cores));
}

void Vm::FlushIcache(uint64_t addr, uint64_t len) {
  // Instructions are at most 10 bytes; anything starting within
  // [addr - 9, addr + len) may overlap the modified range.
  const uint64_t lo = addr >= 9 ? addr - 9 : 0;
  for (auto& icache : icaches_) {
    for (uint64_t a = lo; a < addr + len; ++a) {
      icache.erase(a);
    }
  }
  ++icache_flushes_;
}

void Vm::FlushAllIcache() {
  for (auto& icache : icaches_) {
    icache.clear();
  }
  ++icache_flushes_;
}

uint64_t Vm::icache_entries() const {
  uint64_t total = 0;
  for (const auto& icache : icaches_) {
    total += icache.size();
  }
  return total;
}

bool Vm::AtSafePoint(int core_id, const std::vector<CodeRange>& ranges) const {
  const uint64_t pc = cores_[static_cast<size_t>(core_id)].pc;
  for (const CodeRange& range : ranges) {
    if (range.Contains(pc)) {
      return false;
    }
  }
  return true;
}

void Vm::FlushPredictors() {
  for (Core& core : cores_) {
    core.predictor.Flush();
  }
}

bool Vm::EvalCond(const Core& core, Cond cc) const {
  switch (cc) {
    case Cond::kEq:
      return core.zf;
    case Cond::kNe:
      return !core.zf;
    case Cond::kLt:
      return core.lt_signed;
    case Cond::kLe:
      return core.lt_signed || core.zf;
    case Cond::kGt:
      return !(core.lt_signed || core.zf);
    case Cond::kGe:
      return !core.lt_signed;
    case Cond::kB:
      return core.lt_unsigned;
    case Cond::kBe:
      return core.lt_unsigned || core.zf;
    case Cond::kA:
      return !(core.lt_unsigned || core.zf);
    case Cond::kAe:
      return !core.lt_unsigned;
  }
  return false;
}

std::optional<VmExit> Vm::Step(int core_id) {
  Core& core = cores_[static_cast<size_t>(core_id)];
  if (core.halted) {
    VmExit exit;
    exit.kind = VmExit::Kind::kHalt;
    return exit;
  }

  const uint64_t pc = core.pc;

  // Fetch: consult this core's decoded-instruction cache first. A cache hit
  // skips the memory read entirely — this is what makes un-flushed
  // self-modification visible as stale execution, per core.
  auto& icache = icaches_[static_cast<size_t>(core_id)];
  const CachedInsn* cached = nullptr;
  auto it = icache.find(pc);
  if (it != icache.end()) {
    cached = &it->second;
  }
  Insn insn;
  if (cached != nullptr) {
    if (stale_fetch_detection_ &&
        std::memcmp(cached->bytes.data(), memory_.raw(pc), cached->insn.size) != 0) {
      ++core.stale_fetches;
      VmExit exit;
      exit.kind = VmExit::Kind::kFault;
      exit.fault = Fault{FaultKind::kStaleFetch, pc, pc};
      return exit;
    }
    insn = cached->insn;
  } else {
    // Permission check happens on the fill path, like a hardware ifetch.
    Fault exec_fault = memory_.CheckExec(pc, 1);
    if (exec_fault.ok()) {
      Result<Insn> decoded = Decode(memory_.raw(pc), memory_.size() - pc);
      if (!decoded.ok()) {
        exec_fault = Fault{FaultKind::kBadOpcode, pc, pc};
      } else {
        exec_fault = memory_.CheckExec(pc, decoded->size);
        if (exec_fault.ok()) {
          insn = *decoded;
          CachedInsn entry{insn, {}};
          std::memcpy(entry.bytes.data(), memory_.raw(pc), insn.size);
          icache.emplace(pc, entry);
        }
      }
    }
    if (!exec_fault.ok()) {
      exec_fault.pc = pc;
      VmExit exit;
      exit.kind = VmExit::Kind::kFault;
      exit.fault = exec_fault;
      return exit;
    }
  }

  if (trace_hook_) {
    trace_hook_(TraceEntry{core_id, pc, insn, core.ticks});
  }

  std::optional<VmExit> exit = Execute(core, insn);
  if (!exit.has_value() || exit->kind == VmExit::Kind::kVmCall ||
      exit->kind == VmExit::Kind::kHalt) {
    ++core.instret;
  }
  return exit;
}

VmExit Vm::Run(int core_id, uint64_t max_steps) {
  for (uint64_t i = 0; i < max_steps; ++i) {
    std::optional<VmExit> exit = Step(core_id);
    if (exit.has_value()) {
      return *exit;
    }
  }
  VmExit exit;
  exit.kind = VmExit::Kind::kStepLimit;
  return exit;
}

std::optional<VmExit> Vm::Execute(Core& core, const Insn& insn) {
  const CostModel& cm = cost_model_;
  const uint64_t next = core.pc + insn.size;
  uint64_t* regs = core.regs;

  auto fault_exit = [&](Fault f) {
    f.pc = core.pc;
    VmExit exit;
    exit.kind = VmExit::Kind::kFault;
    exit.fault = f;
    return exit;
  };

  switch (insn.op) {
    case Op::kMovRI:
      regs[insn.a] = static_cast<uint64_t>(insn.imm);
      core.ticks += cm.mov;
      break;
    case Op::kMovRR:
      regs[insn.a] = regs[insn.b];
      core.ticks += cm.mov;
      break;

    case Op::kLd8U:
    case Op::kLd8S:
    case Op::kLd16U:
    case Op::kLd16S:
    case Op::kLd32U:
    case Op::kLd32S:
    case Op::kLd64: {
      int width = 8;
      bool sign = false;
      switch (insn.op) {
        case Op::kLd8U: width = 1; break;
        case Op::kLd8S: width = 1; sign = true; break;
        case Op::kLd16U: width = 2; break;
        case Op::kLd16S: width = 2; sign = true; break;
        case Op::kLd32U: width = 4; break;
        case Op::kLd32S: width = 4; sign = true; break;
        default: break;
      }
      const uint64_t addr = regs[insn.b] + static_cast<uint64_t>(insn.imm);
      uint64_t value = 0;
      Fault f = memory_.Read(addr, width, &value);
      if (!f.ok()) {
        return fault_exit(f);
      }
      regs[insn.a] = sign ? static_cast<uint64_t>(SignExtend(value, width)) : value;
      core.ticks += cm.load;
      break;
    }
    case Op::kSt8:
    case Op::kSt16:
    case Op::kSt32:
    case Op::kSt64: {
      int width = 8;
      switch (insn.op) {
        case Op::kSt8: width = 1; break;
        case Op::kSt16: width = 2; break;
        case Op::kSt32: width = 4; break;
        default: break;
      }
      const uint64_t addr = regs[insn.b] + static_cast<uint64_t>(insn.imm);
      Fault f = memory_.Write(addr, width, regs[insn.a]);
      if (!f.ok()) {
        return fault_exit(f);
      }
      core.ticks += cm.store;
      break;
    }

    case Op::kLdg: {
      const int width = GWidthBytes(insn.gw);
      uint64_t value = 0;
      Fault f = memory_.Read(static_cast<uint64_t>(insn.imm), width, &value);
      if (!f.ok()) {
        return fault_exit(f);
      }
      regs[insn.a] = GWidthSigned(insn.gw)
                         ? static_cast<uint64_t>(SignExtend(value, width))
                         : value;
      core.ticks += cm.global_load;
      break;
    }
    case Op::kStg: {
      const int width = GWidthBytes(insn.gw);
      Fault f = memory_.Write(static_cast<uint64_t>(insn.imm), width, regs[insn.a]);
      if (!f.ok()) {
        return fault_exit(f);
      }
      core.ticks += cm.global_store;
      break;
    }

    case Op::kAdd:
      regs[insn.a] += regs[insn.b];
      core.ticks += cm.alu;
      break;
    case Op::kSub:
      regs[insn.a] -= regs[insn.b];
      core.ticks += cm.alu;
      break;
    case Op::kMul:
      regs[insn.a] *= regs[insn.b];
      core.ticks += cm.alu;
      break;
    case Op::kUDiv:
      if (regs[insn.b] == 0) {
        return fault_exit(Fault{FaultKind::kDivByZero, 0, 0});
      }
      regs[insn.a] /= regs[insn.b];
      core.ticks += cm.alu;
      break;
    case Op::kURem:
      if (regs[insn.b] == 0) {
        return fault_exit(Fault{FaultKind::kDivByZero, 0, 0});
      }
      regs[insn.a] %= regs[insn.b];
      core.ticks += cm.alu;
      break;
    case Op::kSDiv: {
      if (regs[insn.b] == 0) {
        return fault_exit(Fault{FaultKind::kDivByZero, 0, 0});
      }
      const auto lhs = static_cast<int64_t>(regs[insn.a]);
      const auto rhs = static_cast<int64_t>(regs[insn.b]);
      regs[insn.a] = (lhs == INT64_MIN && rhs == -1) ? static_cast<uint64_t>(lhs)
                                                     : static_cast<uint64_t>(lhs / rhs);
      core.ticks += cm.alu;
      break;
    }
    case Op::kSRem: {
      if (regs[insn.b] == 0) {
        return fault_exit(Fault{FaultKind::kDivByZero, 0, 0});
      }
      const auto lhs = static_cast<int64_t>(regs[insn.a]);
      const auto rhs = static_cast<int64_t>(regs[insn.b]);
      regs[insn.a] = (lhs == INT64_MIN && rhs == -1) ? 0 : static_cast<uint64_t>(lhs % rhs);
      core.ticks += cm.alu;
      break;
    }
    case Op::kAnd:
      regs[insn.a] &= regs[insn.b];
      core.ticks += cm.alu;
      break;
    case Op::kOr:
      regs[insn.a] |= regs[insn.b];
      core.ticks += cm.alu;
      break;
    case Op::kXor:
      regs[insn.a] ^= regs[insn.b];
      core.ticks += cm.alu;
      break;
    case Op::kShl:
      regs[insn.a] <<= (regs[insn.b] & 63);
      core.ticks += cm.alu;
      break;
    case Op::kShr:
      regs[insn.a] >>= (regs[insn.b] & 63);
      core.ticks += cm.alu;
      break;
    case Op::kSar:
      regs[insn.a] = static_cast<uint64_t>(static_cast<int64_t>(regs[insn.a]) >>
                                           (regs[insn.b] & 63));
      core.ticks += cm.alu;
      break;

    case Op::kAddI:
      regs[insn.a] += static_cast<uint64_t>(insn.imm);
      core.ticks += cm.alu;
      break;
    case Op::kSubI:
      regs[insn.a] -= static_cast<uint64_t>(insn.imm);
      core.ticks += cm.alu;
      break;
    case Op::kMulI:
      regs[insn.a] *= static_cast<uint64_t>(insn.imm);
      core.ticks += cm.alu;
      break;
    case Op::kAndI:
      regs[insn.a] &= static_cast<uint64_t>(insn.imm);
      core.ticks += cm.alu;
      break;
    case Op::kOrI:
      regs[insn.a] |= static_cast<uint64_t>(insn.imm);
      core.ticks += cm.alu;
      break;
    case Op::kXorI:
      regs[insn.a] ^= static_cast<uint64_t>(insn.imm);
      core.ticks += cm.alu;
      break;
    case Op::kShlI:
      regs[insn.a] <<= insn.imm;
      core.ticks += cm.alu;
      break;
    case Op::kShrI:
      regs[insn.a] >>= insn.imm;
      core.ticks += cm.alu;
      break;
    case Op::kSarI:
      regs[insn.a] =
          static_cast<uint64_t>(static_cast<int64_t>(regs[insn.a]) >> insn.imm);
      core.ticks += cm.alu;
      break;
    case Op::kNot:
      regs[insn.a] = ~regs[insn.a];
      core.ticks += cm.alu;
      break;
    case Op::kNeg:
      regs[insn.a] = ~regs[insn.a] + 1;
      core.ticks += cm.alu;
      break;

    case Op::kCmp: {
      const uint64_t a = regs[insn.a];
      const uint64_t b = regs[insn.b];
      core.zf = a == b;
      core.lt_signed = static_cast<int64_t>(a) < static_cast<int64_t>(b);
      core.lt_unsigned = a < b;
      core.ticks += cm.cmp;
      break;
    }
    case Op::kCmpI: {
      const uint64_t a = regs[insn.a];
      const auto b = static_cast<uint64_t>(insn.imm);
      core.zf = a == b;
      core.lt_signed = static_cast<int64_t>(a) < static_cast<int64_t>(b);
      core.lt_unsigned = a < b;
      core.ticks += cm.cmp;
      break;
    }
    case Op::kSetCC:
      regs[insn.a] = EvalCond(core, insn.cc) ? 1 : 0;
      core.ticks += cm.setcc;
      break;

    case Op::kJmp:
      core.pc = next + static_cast<uint64_t>(insn.imm);
      core.ticks += cm.jmp;
      return std::nullopt;
    case Op::kJcc: {
      const bool taken = EvalCond(core, insn.cc);
      const bool predicted = core.predictor.PredictCond(core.pc);
      core.predictor.UpdateCond(core.pc, taken);
      ++core.cond_branches;
      core.ticks += cm.branch_predicted;
      if (predicted != taken) {
        core.ticks += cm.branch_mispredict_penalty;
        ++core.cond_mispredicts;
      }
      core.pc = taken ? next + static_cast<uint64_t>(insn.imm) : next;
      return std::nullopt;
    }
    case Op::kCall: {
      regs[kRegSP] -= 8;
      Fault f = memory_.Write(regs[kRegSP], 8, next);
      if (!f.ok()) {
        regs[kRegSP] += 8;
        return fault_exit(f);
      }
      core.predictor.PushRet(next);
      core.pc = next + static_cast<uint64_t>(insn.imm);
      core.ticks += cm.call;
      return std::nullopt;
    }
    case Op::kCallR: {
      const uint64_t target = regs[insn.a];
      regs[kRegSP] -= 8;
      Fault f = memory_.Write(regs[kRegSP], 8, next);
      if (!f.ok()) {
        regs[kRegSP] += 8;
        return fault_exit(f);
      }
      core.predictor.PushRet(next);
      ++core.indirect_calls;
      core.ticks += cm.call_indirect;
      if (!core.predictor.PredictAndUpdateIndirect(core.pc, target)) {
        core.ticks += cm.indirect_mispredict_penalty;
        ++core.indirect_mispredicts;
      }
      core.pc = target;
      return std::nullopt;
    }
    case Op::kCallM: {
      uint64_t target = 0;
      Fault lf = memory_.Read(static_cast<uint64_t>(insn.imm), 8, &target);
      if (!lf.ok()) {
        return fault_exit(lf);
      }
      regs[kRegSP] -= 8;
      Fault f = memory_.Write(regs[kRegSP], 8, next);
      if (!f.ok()) {
        regs[kRegSP] += 8;
        return fault_exit(f);
      }
      core.predictor.PushRet(next);
      ++core.indirect_calls;
      core.ticks += cm.call_indirect;
      if (!core.predictor.PredictAndUpdateIndirect(core.pc, target)) {
        core.ticks += cm.indirect_mispredict_penalty;
        ++core.indirect_mispredicts;
      }
      core.pc = target;
      return std::nullopt;
    }
    case Op::kRet: {
      uint64_t target = 0;
      Fault f = memory_.Read(regs[kRegSP], 8, &target);
      if (!f.ok()) {
        return fault_exit(f);
      }
      regs[kRegSP] += 8;
      core.ticks += cm.ret;
      if (!core.predictor.PopRetMatches(target)) {
        core.ticks += cm.branch_mispredict_penalty;
        ++core.ret_mispredicts;
      }
      core.pc = target;
      return std::nullopt;
    }
    case Op::kPush: {
      regs[kRegSP] -= 8;
      Fault f = memory_.Write(regs[kRegSP], 8, regs[insn.a]);
      if (!f.ok()) {
        regs[kRegSP] += 8;
        return fault_exit(f);
      }
      core.ticks += cm.push;
      break;
    }
    case Op::kPop: {
      uint64_t value = 0;
      Fault f = memory_.Read(regs[kRegSP], 8, &value);
      if (!f.ok()) {
        return fault_exit(f);
      }
      regs[insn.a] = value;
      regs[kRegSP] += 8;
      core.ticks += cm.pop;
      break;
    }

    case Op::kNop:
      core.ticks += cm.nop;
      break;
    case Op::kHlt: {
      core.halted = true;
      core.ticks += cm.hlt;
      core.pc = next;
      VmExit exit;
      exit.kind = VmExit::Kind::kHalt;
      return exit;
    }
    case Op::kPause:
      core.ticks += cm.pause;
      break;
    case Op::kFence:
      core.ticks += cm.fence;
      break;
    case Op::kSti:
      core.interrupts_enabled = true;
      if (hypervisor_guest_) {
        core.ticks += cm.sti_cli_guest_trap;
        ++core.priv_traps;
      } else {
        core.ticks += cm.sti_cli_native;
      }
      break;
    case Op::kCli:
      core.interrupts_enabled = false;
      if (hypervisor_guest_) {
        core.ticks += cm.sti_cli_guest_trap;
        ++core.priv_traps;
      } else {
        core.ticks += cm.sti_cli_native;
      }
      break;
    case Op::kXchg: {
      const uint64_t addr = regs[insn.b];
      uint64_t old = 0;
      Fault f = memory_.Read(addr, 4, &old);
      if (!f.ok()) {
        return fault_exit(f);
      }
      f = memory_.Write(addr, 4, regs[insn.a]);
      if (!f.ok()) {
        return fault_exit(f);
      }
      regs[insn.a] = old;
      ++core.atomic_ops;
      core.ticks += cm.xchg_atomic;
      break;
    }
    case Op::kRdtsc:
      regs[insn.a] = core.ticks / kTicksPerCycle;
      core.ticks += cm.rdtsc;
      break;
    case Op::kHypercall: {
      // Hypercall ABI: 0 = enable virtual interrupts, 1 = disable.
      switch (insn.imm) {
        case 0:
          core.interrupts_enabled = true;
          break;
        case 1:
          core.interrupts_enabled = false;
          break;
        default:
          break;
      }
      core.ticks += cm.hypercall;
      break;
    }
    case Op::kVmCall: {
      core.ticks += cm.vmcall;
      core.pc = next;
      VmExit exit;
      exit.kind = VmExit::Kind::kVmCall;
      exit.vmcall_code = static_cast<uint8_t>(insn.imm);
      return exit;
    }
    case Op::kBkpt: {
      // Trap to the host without retiring: pc stays at the BKPT byte, so a
      // resumed core refetches the (by then rewritten) site. The trap entry
      // cost is charged to the trapping core, as on x86 #BP.
      core.ticks += cm.bkpt_trap;
      ++core.bkpt_traps;
      VmExit exit;
      exit.kind = VmExit::Kind::kBreakpoint;
      return exit;
    }
    case Op::kInvalid:
      return fault_exit(Fault{FaultKind::kBadOpcode, core.pc, core.pc});
  }

  core.pc = next;
  return std::nullopt;
}

}  // namespace mv

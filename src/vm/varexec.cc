#include "src/vm/varexec.h"

#include <algorithm>
#include <cstring>

#include "src/support/str.h"

namespace mv {

namespace {

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr uint64_t kFnvPrime = 0x100000001b3ull;

uint64_t FnvBytes(uint64_t hash, const uint8_t* data, size_t len) {
  for (size_t i = 0; i < len; ++i) {
    hash = (hash ^ data[i]) * kFnvPrime;
  }
  return hash;
}

uint64_t FnvU64(uint64_t hash, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    hash = (hash ^ static_cast<uint8_t>(value >> (i * 8))) * kFnvPrime;
  }
  return hash;
}

// Byte width of a load/store data access, 0 for non-memory ops. CALL/RET/
// PUSH/POP stack traffic is handled separately (it depends on SP, not on an
// operand immediate).
int DataWidth(const Insn& insn) {
  switch (insn.op) {
    case Op::kLd8U:
    case Op::kLd8S:
    case Op::kSt8:
      return 1;
    case Op::kLd16U:
    case Op::kLd16S:
    case Op::kSt16:
      return 2;
    case Op::kLd32U:
    case Op::kLd32S:
    case Op::kSt32:
      return 4;
    case Op::kLd64:
    case Op::kSt64:
      return 8;
    case Op::kLdg:
    case Op::kStg:
      return GWidthBytes(insn.gw);
    default:
      return 0;
  }
}

}  // namespace

uint64_t HashCoreArchState(const Core& core) {
  uint64_t hash = kFnvOffset;
  for (uint64_t reg : core.regs) {
    hash = FnvU64(hash, reg);
  }
  hash = FnvU64(hash, core.pc);
  hash = FnvU64(hash, (core.zf ? 1u : 0u) | (core.lt_signed ? 2u : 0u) |
                          (core.lt_unsigned ? 4u : 0u) |
                          (core.interrupts_enabled ? 8u : 0u) |
                          (core.halted ? 16u : 0u));
  return hash;
}

VarExecutor::VarExecutor(Vm* vm, size_t num_configs)
    : vm_(vm), num_configs_(num_configs) {}

Status VarExecutor::AddRegion(VarRegion region) {
  if (region.len == 0) {
    return Status::InvalidArgument("varexec: empty region");
  }
  if (region.addr + region.len > vm_->memory().size()) {
    return Status::InvalidArgument(
        StrFormat("varexec: region '%s' outside memory", region.name.c_str()));
  }
  if (region.variant_of_config.size() != num_configs_) {
    return Status::InvalidArgument(
        StrFormat("varexec: region '%s' maps %zu configs, space has %zu",
                  region.name.c_str(), region.variant_of_config.size(),
                  num_configs_));
  }
  for (const std::vector<uint8_t>& content : region.contents) {
    if (content.size() != region.len) {
      return Status::InvalidArgument(
          StrFormat("varexec: region '%s' content size mismatch",
                    region.name.c_str()));
    }
  }
  // Deduplicate identical contents so "distinct variant index" really means
  // "distinct bytes" — forks group by variant index.
  std::vector<std::vector<uint8_t>> unique;
  std::vector<uint32_t> remap(region.contents.size(), 0);
  for (size_t i = 0; i < region.contents.size(); ++i) {
    size_t found = unique.size();
    for (size_t j = 0; j < unique.size(); ++j) {
      if (unique[j] == region.contents[i]) {
        found = j;
        break;
      }
    }
    if (found == unique.size()) {
      unique.push_back(region.contents[i]);
    }
    remap[i] = static_cast<uint32_t>(found);
  }
  for (uint32_t& v : region.variant_of_config) {
    if (v >= remap.size()) {
      return Status::InvalidArgument(
          StrFormat("varexec: region '%s' variant index out of range",
                    region.name.c_str()));
    }
    v = remap[v];
  }
  region.contents = std::move(unique);
  if (region.contents.size() <= 1) {
    return Status::Ok();  // all configs agree: not variational, nothing to do
  }
  for (const VarRegion& existing : regions_) {
    if (region.addr < existing.addr + existing.len &&
        existing.addr < region.addr + region.len) {
      return Status::InvalidArgument(
          StrFormat("varexec: region '%s' overlaps '%s'", region.name.c_str(),
                    existing.name.c_str()));
    }
  }
  regions_.push_back(std::move(region));
  return Status::Ok();
}

int VarExecutor::RegionAt(uint64_t addr) const {
  for (size_t r = 0; r < regions_.size(); ++r) {
    if (addr >= regions_[r].addr && addr < regions_[r].addr + regions_[r].len) {
      return static_cast<int>(r);
    }
  }
  return -1;
}

bool VarExecutor::RangeTouchesUnresolved(const Context& ctx, uint64_t addr,
                                         uint64_t len,
                                         size_t* region_out) const {
  for (size_t r = 0; r < regions_.size(); ++r) {
    if (ctx.resolved.count(r) != 0) {
      continue;
    }
    const VarRegion& region = regions_[r];
    if (addr < region.addr + region.len && region.addr < addr + len) {
      *region_out = r;
      return true;
    }
  }
  return false;
}

void VarExecutor::ApplyByte(uint64_t addr, uint8_t value) {
  const uint8_t current = vm_->memory().raw(addr)[0];
  if (materialized_.count(addr) == 0) {
    materialized_[addr] = current;
  }
  if (current != value) {
    (void)vm_->memory().WriteRaw(addr, &value, 1);
    if ((vm_->memory().PermsAt(addr) & kPermExec) != 0) {
      vm_->FlushIcache(addr, 1);
    }
  }
}

void VarExecutor::RestoreBaseBytes() {
  for (const auto& [addr, base_value] : materialized_) {
    const uint8_t current = vm_->memory().raw(addr)[0];
    if (current != base_value) {
      (void)vm_->memory().WriteRaw(addr, &base_value, 1);
      if ((vm_->memory().PermsAt(addr) & kPermExec) != 0) {
        vm_->FlushIcache(addr, 1);
      }
    }
  }
  materialized_.clear();
}

void VarExecutor::Materialize(Context* ctx) {
  RestoreBaseBytes();
  for (const auto& [r, variant] : ctx->resolved) {
    const VarRegion& region = regions_[r];
    const std::vector<uint8_t>& content = region.contents[variant];
    for (uint32_t i = 0; i < region.len; ++i) {
      ApplyByte(region.addr + i, content[i]);
    }
  }
  for (const auto& [addr, value] : ctx->delta) {
    ApplyByte(addr, value);
  }
  vm_->core(0) = ctx->core;
}

std::vector<std::pair<uint32_t, PresenceCondition>> VarExecutor::GroupByVariant(
    const Context& ctx, const VarRegion& region) const {
  std::vector<std::pair<uint32_t, PresenceCondition>> groups;
  for (size_t c = 0; c < num_configs_; ++c) {
    if (!ctx.mask.Test(c)) {
      continue;
    }
    const uint32_t variant = region.variant_of_config[c];
    bool found = false;
    for (auto& [v, mask] : groups) {
      if (v == variant) {
        mask.Set(c);
        found = true;
        break;
      }
    }
    if (!found) {
      groups.emplace_back(variant, PresenceCondition::Single(num_configs_, c));
    }
  }
  return groups;
}

Result<bool> VarExecutor::ResolveRegion(size_t r) {
  const VarRegion& region = regions_[r];
  std::vector<std::pair<uint32_t, PresenceCondition>> groups =
      GroupByVariant(contexts_[current_], region);
  if (groups.empty()) {
    return Status::Internal("varexec: resolving region for an empty mask");
  }
  if (groups.size() == 1) {
    ++stats_.region_resolutions;
  } else {
    // Fork: the current context keeps the first group; clones take the rest.
    if (contexts_.size() + groups.size() - 1 > 4096 &&
        contexts_.size() + groups.size() - 1 > num_configs_) {
      return Status::Internal("varexec: context explosion");
    }
    contexts_[current_].core = vm_->core(0);
    stats_.forks += groups.size() - 1;
    // Clone from a value snapshot: push_back can reallocate contexts_, so a
    // reference into it would dangle after the first clone.
    const Context proto = contexts_[current_];
    for (size_t g = 1; g < groups.size(); ++g) {
      Context child = proto;  // copies delta, resolutions, transcript, core
      child.mask = groups[g].second;
      child.resolved[r] = groups[g].first;
      child.parked = false;
      contexts_.push_back(std::move(child));
    }
  }
  // Re-fetch: contexts_ may have reallocated.
  Context& self = contexts_[current_];
  self.mask = groups[0].second;
  self.resolved[r] = groups[0].first;
  const std::vector<uint8_t>& content = region.contents[groups[0].first];
  for (uint32_t i = 0; i < region.len; ++i) {
    ApplyByte(region.addr + i, content[i]);
  }
  stats_.peak_contexts = std::max<uint64_t>(stats_.peak_contexts, contexts_.size());
  return groups.size() == 1;
}

void VarExecutor::ReadSet(const Insn& insn, const Core& core,
                          std::vector<std::pair<uint64_t, uint64_t>>* out) const {
  out->clear();
  const int width = DataWidth(insn);
  switch (insn.op) {
    case Op::kLd8U:
    case Op::kLd8S:
    case Op::kLd16U:
    case Op::kLd16S:
    case Op::kLd32U:
    case Op::kLd32S:
    case Op::kLd64:
      out->emplace_back(core.regs[insn.b] + static_cast<uint64_t>(insn.imm),
                        width);
      break;
    case Op::kLdg:
      out->emplace_back(static_cast<uint64_t>(insn.imm), width);
      break;
    case Op::kCallM:
      out->emplace_back(static_cast<uint64_t>(insn.imm), 8);
      break;
    case Op::kRet:
    case Op::kPop:
      out->emplace_back(core.regs[kRegSP], 8);
      break;
    case Op::kXchg:
      out->emplace_back(core.regs[insn.b], 4);
      break;
    default:
      break;
  }
}

void VarExecutor::WriteSet(const Insn& insn, const Core& core,
                           std::vector<std::pair<uint64_t, uint64_t>>* out) const {
  out->clear();
  const int width = DataWidth(insn);
  switch (insn.op) {
    case Op::kSt8:
    case Op::kSt16:
    case Op::kSt32:
    case Op::kSt64:
      out->emplace_back(core.regs[insn.b] + static_cast<uint64_t>(insn.imm),
                        width);
      break;
    case Op::kStg:
      out->emplace_back(static_cast<uint64_t>(insn.imm), width);
      break;
    case Op::kCall:
    case Op::kCallR:
    case Op::kCallM:
    case Op::kPush:
      out->emplace_back(core.regs[kRegSP] - 8, 8);
      break;
    case Op::kXchg:
      out->emplace_back(core.regs[insn.b], 4);
      break;
    default:
      break;
  }
}

Result<bool> VarExecutor::PrepareStep(Insn* insn, bool* decoded) {
  *decoded = false;
  std::vector<std::pair<uint64_t, uint64_t>> ranges;
  for (;;) {
    const uint64_t pc = vm_->core(0).pc;
    // The opcode byte itself: a patched call site replaces the whole window,
    // so a pc inside an unresolved region must resolve before decode.
    size_t r = 0;
    if (RangeTouchesUnresolved(contexts_[current_], pc, 1, &r)) {
      Result<bool> resolved = ResolveRegion(r);
      if (!resolved.ok()) {
        return resolved.status();
      }
      if (!*resolved) {
        return false;  // forked
      }
      continue;
    }
    uint8_t window[10] = {};
    const uint64_t avail =
        std::min<uint64_t>(sizeof(window), vm_->memory().size() - pc);
    if (pc >= vm_->memory().size() ||
        !vm_->memory().ReadRaw(pc, window, avail).ok()) {
      return true;  // the real Step will fault identically
    }
    Result<Insn> next = Decode(window, avail);
    if (!next.ok()) {
      return true;  // undecodable: let Step raise kBadOpcode
    }
    // Operand bytes (MVISA sizes are opcode-determined, so `size` is valid
    // even when operand bytes are still unresolved).
    if (RangeTouchesUnresolved(contexts_[current_], pc, next->size, &r)) {
      Result<bool> resolved = ResolveRegion(r);
      if (!resolved.ok()) {
        return resolved.status();
      }
      if (!*resolved) {
        return false;
      }
      continue;  // operand bytes changed: re-decode
    }
    // Data accesses: any read or write observing an unresolved region
    // resolves it first — this is the switch-cell divergence point.
    bool resolved_any = false;
    for (int pass = 0; pass < 2 && !resolved_any; ++pass) {
      pass == 0 ? ReadSet(*next, vm_->core(0), &ranges)
                : WriteSet(*next, vm_->core(0), &ranges);
      for (const auto& [addr, len] : ranges) {
        if (len != 0 && addr < vm_->memory().size() &&
            RangeTouchesUnresolved(contexts_[current_], addr, len, &r)) {
          Result<bool> resolved = ResolveRegion(r);
          if (!resolved.ok()) {
            return resolved.status();
          }
          if (!*resolved) {
            return false;
          }
          resolved_any = true;
          break;
        }
      }
    }
    if (resolved_any) {
      continue;
    }
    *insn = *next;
    *decoded = true;
    return true;
  }
}

void VarExecutor::FinishCurrent(const VmExit& exit) {
  Context& ctx = contexts_[current_];
  ctx.core = vm_->core(0);
  ctx.exit = exit;
  ctx.done = true;
  ctx.parked = false;
}

Status VarExecutor::StepCurrent(const VarExecOptions& options, bool* progressed) {
  Context& ctx = contexts_[current_];
  *progressed = false;
  if (vm_->core(0).instret - instret_base_ >= options.max_steps_per_config) {
    return Status::Internal(StrFormat(
        "varexec: context %s exceeded %llu steps", ctx.mask.ToString().c_str(),
        (unsigned long long)options.max_steps_per_config));
  }
  Insn insn;
  bool decoded = false;
  Result<bool> prepared = PrepareStep(&insn, &decoded);
  if (!prepared.ok()) {
    return prepared.status();
  }
  if (!*prepared) {
    return Status::Ok();  // forked; scheduler re-picks (no step retired)
  }
  if (decoded && insn.op == Op::kRdtsc && contexts_[current_].ticks_approx) {
    return Status::FailedPrecondition(
        "varexec: RDTSC after a state merge — tick accounting is approximate "
        "and architecturally visible; rerun with merging disabled");
  }
  // Copy-on-write capture: remember the base value of every byte this
  // instruction may write, then harvest the written bytes into the delta.
  std::vector<std::pair<uint64_t, uint64_t>> writes;
  if (decoded) {
    WriteSet(insn, vm_->core(0), &writes);
    for (const auto& [addr, len] : writes) {
      for (uint64_t i = 0; i < len; ++i) {
        const uint64_t a = addr + i;
        if (a < vm_->memory().size() && materialized_.count(a) == 0) {
          materialized_[a] = vm_->memory().raw(a)[0];
        }
      }
    }
  }
  std::optional<VmExit> exit = vm_->Step(0);
  ++stats_.instructions_executed;
  *progressed = true;
  Context& self = contexts_[current_];
  if (decoded) {
    for (const auto& [addr, len] : writes) {
      for (uint64_t i = 0; i < len; ++i) {
        const uint64_t a = addr + i;
        if (a < vm_->memory().size()) {
          self.delta[a] = vm_->memory().raw(a)[0];
        }
      }
    }
  }
  if (exit.has_value()) {
    switch (exit->kind) {
      case VmExit::Kind::kVmCall:
        if (exit->vmcall_code == options.putchar_code) {
          self.transcript.push_back(static_cast<char>(vm_->core(0).regs[0]));
          return Status::Ok();
        }
        return Status::Unimplemented(StrFormat(
            "varexec: VMCALL %u inside a variational run (only putchar is "
            "config-neutral; commit/revert upcalls mutate text mid-proof)",
            exit->vmcall_code));
      case VmExit::Kind::kHalt:
      case VmExit::Kind::kFault:
        FinishCurrent(*exit);
        return Status::Ok();
      case VmExit::Kind::kBreakpoint:
      case VmExit::Kind::kStepLimit:
        return Status::Unimplemented(
            StrFormat("varexec: unsupported exit %s", exit->ToString().c_str()));
    }
  }
  // Park at a join pc so reconverged siblings get a chance to merge.
  if (!join_pcs_.empty() && contexts_.size() > 1) {
    const uint64_t pc = vm_->core(0).pc;
    if (std::binary_search(join_pcs_.begin(), join_pcs_.end(), pc)) {
      self.core = vm_->core(0);
      self.parked = true;
    }
  }
  return Status::Ok();
}

std::map<uint64_t, uint8_t> VarExecutor::NormalizedDelta(const Context& ctx) const {
  std::map<uint64_t, uint8_t> out;
  for (const auto& [addr, value] : ctx.delta) {
    // Writes that restored the shared base value are not state — unless the
    // byte lies in a variational region, where the base is not the content
    // the config observes.
    if (value == base_[addr] && RegionAt(addr) < 0) {
      continue;
    }
    out.emplace(addr, value);
  }
  return out;
}

bool VarExecutor::TryMerge(Context* into, Context* from) {
  if (into->core.pc != from->core.pc ||
      std::memcmp(into->core.regs, from->core.regs, sizeof(into->core.regs)) != 0 ||
      into->core.zf != from->core.zf ||
      into->core.lt_signed != from->core.lt_signed ||
      into->core.lt_unsigned != from->core.lt_unsigned ||
      into->core.interrupts_enabled != from->core.interrupts_enabled ||
      into->core.halted != from->core.halted ||
      into->transcript != from->transcript ||
      !into->mask.Disjoint(from->mask) ||
      NormalizedDelta(*into) != NormalizedDelta(*from)) {
    return false;
  }
  // Resolutions that disagree (or exist on one side only) become unresolved
  // again: region content is a pure function of config, so the merged
  // context re-forks lazily if the region is observed again.
  std::map<size_t, uint32_t> kept;
  for (const auto& [r, variant] : into->resolved) {
    auto it = from->resolved.find(r);
    if (it != from->resolved.end() && it->second == variant) {
      kept.emplace(r, variant);
    }
  }
  into->ticks_approx = into->ticks_approx || from->ticks_approx ||
                       into->core.ticks != from->core.ticks;
  into->core.ticks = std::max(into->core.ticks, from->core.ticks);
  into->core.instret = std::max(into->core.instret, from->core.instret);
  into->resolved = std::move(kept);
  into->mask = into->mask.Union(from->mask);
  ++stats_.merges;
  return true;
}

void VarExecutor::MergeRound() {
  ++stats_.merge_rounds;
  // All contexts are parked or done; nothing is materialized mid-flight, so
  // it is safe to drop the overlay and compact the context vector.
  RestoreBaseBytes();
  current_ = SIZE_MAX;
  std::vector<bool> dead(contexts_.size(), false);
  for (size_t i = 0; i < contexts_.size(); ++i) {
    if (dead[i] || !contexts_[i].parked) {
      continue;
    }
    for (size_t j = i + 1; j < contexts_.size(); ++j) {
      if (dead[j] || !contexts_[j].parked) {
        continue;
      }
      if (TryMerge(&contexts_[i], &contexts_[j])) {
        dead[j] = true;
      }
    }
  }
  std::vector<Context> alive;
  alive.reserve(contexts_.size());
  for (size_t i = 0; i < contexts_.size(); ++i) {
    if (!dead[i]) {
      contexts_[i].parked = false;
      alive.push_back(std::move(contexts_[i]));
    }
  }
  contexts_ = std::move(alive);
}

uint64_t VarExecutor::ChecksumFor(const Context& ctx, size_t config,
                                  const VarExecOptions& options) {
  if (options.checksum_hi <= options.checksum_lo) {
    return 0;
  }
  const uint64_t lo = options.checksum_lo;
  const uint64_t hi = std::min<uint64_t>(options.checksum_hi, vm_->memory().size());
  // Overlay the bytes this config observes for every region the context
  // never resolved (resolved regions and the delta are already materialized).
  std::vector<std::pair<uint64_t, uint8_t>> saved;
  for (size_t r = 0; r < regions_.size(); ++r) {
    if (ctx.resolved.count(r) != 0) {
      continue;
    }
    const VarRegion& region = regions_[r];
    if (region.addr + region.len <= lo || region.addr >= hi) {
      continue;
    }
    const std::vector<uint8_t>& content =
        region.contents[region.variant_of_config[config]];
    for (uint32_t i = 0; i < region.len; ++i) {
      const uint64_t a = region.addr + i;
      if (a < lo || a >= hi || ctx.delta.count(a) != 0) {
        continue;
      }
      saved.emplace_back(a, vm_->memory().raw(a)[0]);
      (void)vm_->memory().WriteRaw(a, &content[i], 1);
    }
  }
  const uint64_t hash = FnvBytes(kFnvOffset, vm_->memory().raw(lo), hi - lo);
  for (const auto& [a, value] : saved) {
    (void)vm_->memory().WriteRaw(a, &value, 1);
  }
  return hash;
}

Result<std::vector<ConfigOutcome>> VarExecutor::Run(const VarExecOptions& options) {
  if (num_configs_ == 0) {
    return Status::InvalidArgument("varexec: empty config space");
  }
  base_.resize(vm_->memory().size());
  Status snap = vm_->memory().ReadRaw(0, base_.data(), base_.size());
  if (!snap.ok()) {
    return snap;
  }
  join_pcs_ = options.join_pcs;
  instret_base_ = vm_->core(0).instret;
  std::sort(join_pcs_.begin(), join_pcs_.end());
  contexts_.clear();
  materialized_.clear();
  stats_ = VarExecStats{};
  Context root;
  root.mask = PresenceCondition::All(num_configs_);
  root.core = vm_->core(0);
  contexts_.push_back(std::move(root));
  stats_.peak_contexts = 1;
  current_ = SIZE_MAX;

  for (;;) {
    if (contexts_.size() > options.max_contexts) {
      return Status::Internal(
          StrFormat("varexec: %zu contexts exceed the cap %zu",
                    contexts_.size(), options.max_contexts));
    }
    // Min-instret scheduling keeps siblings roughly in lockstep, which is
    // what makes reconvergence (and therefore merging) observable.
    size_t pick = SIZE_MAX;
    bool any_parked = false;
    for (size_t i = 0; i < contexts_.size(); ++i) {
      if (contexts_[i].done) {
        continue;
      }
      if (contexts_[i].parked) {
        any_parked = true;
        continue;
      }
      if (pick == SIZE_MAX ||
          contexts_[i].core.instret < contexts_[pick].core.instret) {
        pick = i;
      }
    }
    if (pick == SIZE_MAX) {
      if (!any_parked) {
        break;  // every context is done
      }
      MergeRound();
      continue;
    }
    if (pick != current_) {
      if (current_ != SIZE_MAX && current_ < contexts_.size() &&
          !contexts_[current_].done) {
        contexts_[current_].core = vm_->core(0);
      }
      current_ = pick;
      Materialize(&contexts_[current_]);
      ++stats_.context_switches;
    }
    for (uint64_t slice = 0; slice < options.schedule_slice; ++slice) {
      bool progressed = false;
      Status status = StepCurrent(options, &progressed);
      if (!status.ok()) {
        return status;
      }
      Context& ctx = contexts_[current_];
      if (ctx.done || ctx.parked || !progressed) {
        break;
      }
      ctx.core = vm_->core(0);
    }
    if (current_ < contexts_.size() && !contexts_[current_].done &&
        !contexts_[current_].parked) {
      contexts_[current_].core = vm_->core(0);
    }
  }

  // Partition invariant: every config accounted for exactly once.
  std::vector<PresenceCondition> masks;
  masks.reserve(contexts_.size());
  for (const Context& ctx : contexts_) {
    masks.push_back(ctx.mask);
  }
  if (!IsPartition(masks, num_configs_)) {
    return Status::Internal(
        "varexec: presence conditions no longer partition the config space");
  }

  std::vector<ConfigOutcome> outcomes(num_configs_);
  for (size_t i = 0; i < contexts_.size(); ++i) {
    Context& ctx = contexts_[i];
    current_ = i;
    Materialize(&ctx);
    const uint64_t core_hash = HashCoreArchState(ctx.core);
    for (size_t c : ctx.mask.Configs()) {
      ConfigOutcome& out = outcomes[c];
      out.exit = ctx.exit.kind;
      out.fault = ctx.exit.fault;
      out.transcript = ctx.transcript;
      out.r0 = ctx.core.regs[0];
      out.core_hash = core_hash;
      out.instret = ctx.core.instret - instret_base_;
      out.cycles = ctx.core.cycles();
      out.ticks_approx = ctx.ticks_approx;
      out.mem_checksum = ChecksumFor(ctx, c, options);
    }
  }
  return outcomes;
}

}  // namespace mv

// Superblock dispatch: per-core caches of decoded straight-line traces.
//
// A superblock is the run of instructions from an entry pc to the first
// control transfer (branch, call, ret, BKPT, VMCALL — see EndsSuperblock) or
// page boundary, decoded once and dispatched with a single cache lookup per
// block instead of one icache probe per instruction. It is purely a decode
// cache: execution still advances one instruction per Vm::Step, so multi-core
// round-robin interleaving is exactly as fine-grained as under the legacy
// engine, and the cycle accounting (quarter-cycle ticks included) is
// bit-identical because every instruction retires through the same Execute
// path with its precomputed decode.
//
// Equivalence with the legacy per-instruction engine is maintained by two
// rules (see Vm for the enforcement):
//  * blocks are built by consulting the legacy per-core icache first — a
//    stale icache entry (unflushed self-modification) flows into the block
//    unchanged, so stale execution and kStaleFetch verdicts are preserved;
//    instructions decoded fresh during a build fill the icache only when
//    first dispatched, which is exactly the legacy fill moment;
//  * any byte change (or X-dropping protection change) to memory backing a
//    cached block evicts every overlapping block — immediately on the core
//    that is running, and on every other core before its next fetch (at the
//    point of the write under Vm's kBroadcast invalidation mode; from the
//    queued-range reconcile at Step/Run entry under the default kScoped
//    mode) — so a dispatch never reads a block whose backing bytes changed;
//    the rebuild re-consults the icache and recovers the legacy engine's
//    state exactly. Protection changes that retain X (the W^X patching
//    dance) don't alter what a fetch decodes and skip eviction under kScoped.
#ifndef MULTIVERSE_SRC_VM_SUPERBLOCK_H_
#define MULTIVERSE_SRC_VM_SUPERBLOCK_H_

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/isa/isa.h"
#include "src/support/status.h"

namespace mv {

enum class DispatchEngine : uint8_t {
  kLegacy,      // one icache probe per instruction (the original engine)
  kSuperblock,  // one block-cache probe per straight-line trace
  kThreaded,    // hot blocks compiled to threaded code (see threaded.h)
};

const char* DispatchEngineName(DispatchEngine engine);
Result<DispatchEngine> ParseDispatchEngine(const std::string& name);

// Process-wide default applied to newly constructed Vms — the hook for the
// bench/tool `--dispatch` flags, so every Program built afterwards inherits
// the selected engine.
void SetDefaultDispatchEngine(DispatchEngine engine);
DispatchEngine DefaultDispatchEngine();

// Upper bound on instructions per superblock, so a pathological straight-line
// run (e.g. a NOP slide) cannot build unbounded traces.
inline constexpr size_t kMaxSuperblockInsns = 64;

struct SuperblockInsn {
  Insn insn;
  uint64_t pc = 0;
  // Encoding snapshot: the legacy icache entry's fill-time bytes for
  // icache-sourced elements (stale-fetch comparisons use these), or the
  // build-time memory bytes for freshly decoded ones.
  std::array<uint8_t, 10> bytes{};
  bool from_icache = false;  // mirrors a legacy icache hit: stale-checkable
  bool filled = false;       // the per-insn icache already holds this pc
  // Precomputed memory-access shape for load/store ops (width in bytes and
  // signedness of the extension), so the block-walk fast path pays no
  // per-dispatch op decoding. Zero for non-memory ops.
  uint8_t mem_width = 0;
  bool mem_sign = false;
};

// Compiled form of a hot superblock (threaded.h). Owned by the block so trace
// lifetime is exactly block lifetime: every eviction path that frees a block
// frees its compiled trace with it, and no separate invalidation protocol is
// needed for the compiled tier.
struct ThreadedTrace;

struct Superblock {
  uint64_t entry = 0;
  uint64_t end = 0;  // one past the last byte the trace decoded
  std::vector<SuperblockInsn> insns;

  // Successor hint (block chaining): the block control last transferred to
  // from this block's end, so steady-state loops skip the cache probe
  // entirely. Valid only while succ_epoch matches the VM's eviction epoch —
  // any eviction invalidates every hint at once without a sweep.
  Superblock* succ = nullptr;
  uint64_t succ_pc = 0;
  uint64_t succ_epoch = 0;

  // Threaded-tier promotion state (used only under DispatchEngine::kThreaded):
  // entries counts how many times Run dispatch entered this block at element
  // 0; once it crosses the promotion threshold the block is lowered to a
  // ThreadedTrace. The superblock walk itself never reads either field, so
  // the kSuperblock engine is unaffected.
  uint32_t entries = 0;
  std::unique_ptr<ThreadedTrace> trace;

  Superblock();
  ~Superblock();  // out-of-line: ThreadedTrace is incomplete here

  bool Overlaps(uint64_t lo, uint64_t hi) const { return entry < hi && lo < end; }
};

// Per-core fall-through cursor: while execution stays inside a block, the
// next dispatch is an array index instead of a hash probe.
struct SuperblockCursor {
  Superblock* block = nullptr;
  size_t index = 0;
};

}  // namespace mv

#endif  // MULTIVERSE_SRC_VM_SUPERBLOCK_H_

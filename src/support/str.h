// Small string helpers shared by the printer, disassembler and benchmarks.
#ifndef MULTIVERSE_SRC_SUPPORT_STR_H_
#define MULTIVERSE_SRC_SUPPORT_STR_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mv {

// Formats like snprintf but returns a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// Joins parts with a separator.
std::string StrJoin(const std::vector<std::string>& parts, std::string_view sep);

// Hex string "0x..." of a 64-bit value.
std::string HexString(uint64_t value);

bool StartsWith(std::string_view text, std::string_view prefix);

// FNV-1a over arbitrary bytes; used for structural hashing of function bodies.
uint64_t HashBytes(const void* data, size_t size, uint64_t seed = 0xcbf29ce484222325ULL);

inline uint64_t HashCombine(uint64_t h, uint64_t v) {
  return HashBytes(&v, sizeof(v), h);
}

}  // namespace mv

#endif  // MULTIVERSE_SRC_SUPPORT_STR_H_

#include "src/support/diagnostics.h"

#include <utility>

namespace mv {

std::string SourceLoc::ToString() const {
  if (!valid()) {
    return "<unknown>";
  }
  return std::to_string(line) + ":" + std::to_string(column);
}

std::string Diagnostic::ToString() const {
  std::string out = loc.ToString();
  switch (severity) {
    case DiagSeverity::kNote:
      out += ": note: ";
      break;
    case DiagSeverity::kWarning:
      out += ": warning: ";
      break;
    case DiagSeverity::kError:
      out += ": error: ";
      break;
  }
  out += message;
  return out;
}

void DiagnosticSink::Error(SourceLoc loc, std::string message) {
  diagnostics_.push_back({DiagSeverity::kError, loc, std::move(message)});
  ++error_count_;
}

void DiagnosticSink::Warning(SourceLoc loc, std::string message) {
  diagnostics_.push_back({DiagSeverity::kWarning, loc, std::move(message)});
  ++warning_count_;
}

void DiagnosticSink::Note(SourceLoc loc, std::string message) {
  diagnostics_.push_back({DiagSeverity::kNote, loc, std::move(message)});
}

std::string DiagnosticSink::ToString() const {
  std::string out;
  for (const Diagnostic& diag : diagnostics_) {
    out += diag.ToString();
    out += '\n';
  }
  return out;
}

}  // namespace mv

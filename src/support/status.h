// Lightweight status / result types used across the multiverse toolchain.
//
// We deliberately avoid exceptions in the substrate layers (VM, linker, runtime
// patcher): faults and failures are part of the modelled domain and must be
// inspectable values, not control flow.
#ifndef MULTIVERSE_SRC_SUPPORT_STATUS_H_
#define MULTIVERSE_SRC_SUPPORT_STATUS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace mv {

enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
};

// Human-readable name of a status code ("ok", "invalid-argument", ...).
std::string_view StatusCodeName(StatusCode code);

// A status is a code plus an optional message. The empty-message kOk status is
// cheap to construct and copy.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "ok" or "<code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// Result<T> holds either a value or an error status (never an OK status).
template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : data_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) {
      return kOk;
    }
    return std::get<Status>(data_);
  }

  T& value() { return std::get<T>(data_); }
  const T& value() const { return std::get<T>(data_); }

  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> data_;
};

}  // namespace mv

// Propagates an error status from an expression producing a Status.
#define MV_RETURN_IF_ERROR(expr)        \
  do {                                  \
    ::mv::Status _mv_status = (expr);   \
    if (!_mv_status.ok()) {             \
      return _mv_status;                \
    }                                   \
  } while (0)

// Assigns the value of a Result<T> expression to `lhs`, or returns its status.
#define MV_ASSIGN_OR_RETURN(lhs, expr)  \
  auto MV_CONCAT_(_mv_result_, __LINE__) = (expr);          \
  if (!MV_CONCAT_(_mv_result_, __LINE__).ok()) {            \
    return MV_CONCAT_(_mv_result_, __LINE__).status();      \
  }                                                         \
  lhs = std::move(MV_CONCAT_(_mv_result_, __LINE__).value())

#define MV_CONCAT_INNER_(a, b) a##b
#define MV_CONCAT_(a, b) MV_CONCAT_INNER_(a, b)

#endif  // MULTIVERSE_SRC_SUPPORT_STATUS_H_

// Source locations and diagnostic collection for the mvc frontend.
#ifndef MULTIVERSE_SRC_SUPPORT_DIAGNOSTICS_H_
#define MULTIVERSE_SRC_SUPPORT_DIAGNOSTICS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace mv {

// A position inside an mvc source buffer. Lines and columns are 1-based.
struct SourceLoc {
  uint32_t line = 0;
  uint32_t column = 0;

  bool valid() const { return line != 0; }
  std::string ToString() const;
};

enum class DiagSeverity : uint8_t { kNote, kWarning, kError };

struct Diagnostic {
  DiagSeverity severity = DiagSeverity::kError;
  SourceLoc loc;
  std::string message;

  std::string ToString() const;
};

// Accumulates diagnostics across lexing, parsing, semantic analysis and the
// specializer (e.g. the paper-mandated warning for writes to a configuration
// switch inside a specialized variant).
class DiagnosticSink {
 public:
  void Error(SourceLoc loc, std::string message);
  void Warning(SourceLoc loc, std::string message);
  void Note(SourceLoc loc, std::string message);

  bool has_errors() const { return error_count_ > 0; }
  size_t error_count() const { return error_count_; }
  size_t warning_count() const { return warning_count_; }
  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }

  // All diagnostics, one per line.
  std::string ToString() const;

 private:
  std::vector<Diagnostic> diagnostics_;
  size_t error_count_ = 0;
  size_t warning_count_ = 0;
};

}  // namespace mv

#endif  // MULTIVERSE_SRC_SUPPORT_DIAGNOSTICS_H_

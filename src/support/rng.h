// Deterministic pseudo-random number generation for workload data and
// property tests. xoshiro256** — small, fast, reproducible across platforms.
#ifndef MULTIVERSE_SRC_SUPPORT_RNG_H_
#define MULTIVERSE_SRC_SUPPORT_RNG_H_

#include <cstddef>
#include <cstdint>

namespace mv {

// SplitMix64 — the one stateless 64-bit mixer/stream generator shared by the
// whole tree: Rng seeding below, the fleet's deterministic request stream
// (src/fleet/fleet.cc), the chaos schedule's per-slot draws
// (src/fleet/chaos.cc), and the storm scheduler's flip streams. Every value
// is a pure function of the input, so any consumer that keys it on
// (seed, index) gets a reproducible stream with random access.
inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // splitmix64 seeding, as recommended by the xoshiro authors. The
    // increment is folded into SplitMix64 itself, so seeding is four
    // consecutive draws of the (seed + k * golden-gamma) stream.
    for (uint64_t i = 0; i < 4; ++i) {
      state_[i] = SplitMix64(seed + i * 0x9e3779b97f4a7c15ULL);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform value in [0, bound). bound must be > 0.
  uint64_t NextBelow(uint64_t bound) { return Next() % bound; }

  // Uniform value in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(NextBelow(static_cast<uint64_t>(hi - lo + 1)));
  }

  bool NextBool() { return (Next() & 1) != 0; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace mv

#endif  // MULTIVERSE_SRC_SUPPORT_RNG_H_

// Deterministic pseudo-random number generation for workload data and
// property tests. xoshiro256** — small, fast, reproducible across platforms.
#ifndef MULTIVERSE_SRC_SUPPORT_RNG_H_
#define MULTIVERSE_SRC_SUPPORT_RNG_H_

#include <cstdint>

namespace mv {

class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // splitmix64 seeding, as recommended by the xoshiro authors.
    uint64_t x = seed;
    for (uint64_t& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform value in [0, bound). bound must be > 0.
  uint64_t NextBelow(uint64_t bound) { return Next() % bound; }

  // Uniform value in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(NextBelow(static_cast<uint64_t>(hi - lo + 1)));
  }

  bool NextBool() { return (Next() & 1) != 0; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace mv

#endif  // MULTIVERSE_SRC_SUPPORT_RNG_H_

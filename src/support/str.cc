#include "src/support/str.h"

#include <cstdarg>
#include <cstdio>

namespace mv {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string StrJoin(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) {
      out += sep;
    }
    out += parts[i];
  }
  return out;
}

std::string HexString(uint64_t value) { return StrFormat("0x%llx", (unsigned long long)value); }

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

uint64_t HashBytes(const void* data, size_t size, uint64_t seed) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint64_t hash = seed;
  for (size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace mv

#include "src/support/status.h"

namespace mv {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid-argument";
    case StatusCode::kNotFound:
      return "not-found";
    case StatusCode::kAlreadyExists:
      return "already-exists";
    case StatusCode::kOutOfRange:
      return "out-of-range";
    case StatusCode::kFailedPrecondition:
      return "failed-precondition";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kInternal:
      return "internal";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) {
    return "ok";
  }
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace mv

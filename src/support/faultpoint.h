// Deterministic fault injection for the transactional patching stack.
//
// The commit failure model (docs/INTERNALS.md §11) enumerates the ways a
// low-level patch operation can die on real hardware: a code-byte write that
// lands partially, an mprotect toggle the kernel refuses, an icache
// invalidation IPI that never reaches the other cores. Each such primitive is
// instrumented with a named fault point; a test arms the injector to kill the
// N-th occurrence of one point and the recovery machinery (src/core/txn.h)
// must bring the image back to a consistent state.
//
// The injector is deliberately a process-wide singleton with *counted*,
// one-shot triggers: every occurrence of a site advances that site's hit
// counter whether or not the injector is armed, so a sweep can first probe a
// commit to learn how many fault points it crosses and then re-run it once
// per (site, index) pair. Counting costs one branch and one increment per
// instrumented primitive; production builds pay nothing else.
#ifndef MULTIVERSE_SRC_SUPPORT_FAULTPOINT_H_
#define MULTIVERSE_SRC_SUPPORT_FAULTPOINT_H_

#include <array>
#include <cstdint>

namespace mv {

// The instrumented primitives of the patching stack.
enum class FaultSite : uint8_t {
  kPatchWrite = 0,  // code-byte write (WriteCodeBytes): fails after writing a
                    // torn 1-byte prefix — the adversarial partial write
  kProtect,         // Memory::Protect (mprotect): fails, perms unchanged
  kIcacheFlush,     // Vm::FlushIcache: silently suppressed (no error — the
                    // classic forgotten-invalidation bug; recovery must
                    // *detect* it via flush accounting, not be told)
  kCrash,           // DurableJournal::Append: the instance dies at a journal
                    // entry boundary — the record is never written, in-memory
                    // state is abandoned as-is (no rollback runs; a dead
                    // process cleans up nothing)
  kCrashTorn,       // DurableJournal::Append: the instance dies mid-record,
                    // leaving a torn prefix of the entry in the durable log
  kSiteCount,
};

inline constexpr size_t kFaultSiteCount = static_cast<size_t>(FaultSite::kSiteCount);

inline const char* FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kPatchWrite:
      return "patch-write";
    case FaultSite::kProtect:
      return "mprotect";
    case FaultSite::kIcacheFlush:
      return "icache-flush";
    case FaultSite::kCrash:
      return "crash";
    case FaultSite::kCrashTorn:
      return "crash-torn";
    case FaultSite::kSiteCount:
      break;
  }
  return "?";
}

class FaultInjector {
 public:
  static FaultInjector& Instance() {
    static FaultInjector injector;
    return injector;
  }

  // Arms the injector: the `hit`-th future occurrence (0-based, counted from
  // this call) of `site` fails. One-shot — the trigger disarms itself when it
  // fires, so a bounded retry of the same commit succeeds (the transient-fault
  // model). Re-arm for persistent faults.
  void Arm(FaultSite site, uint64_t hit) {
    armed_ = true;
    armed_site_ = site;
    trigger_at_ = Count(site) + hit;
  }

  void Disarm() { armed_ = false; }
  bool armed() const { return armed_; }

  // Called by each instrumented primitive. Advances the site's hit counter
  // and reports whether this occurrence must fail.
  bool ShouldFail(FaultSite site) {
    const uint64_t hit = counts_[static_cast<size_t>(site)]++;
    if (armed_ && site == armed_site_ && hit == trigger_at_) {
      armed_ = false;  // one-shot
      ++injected_;
      return true;
    }
    return false;
  }

  // Occurrences of `site` observed since construction / ResetCounts(). A
  // probe run (disarmed commit) between two readings yields the number of
  // fault points a sweep must cover.
  uint64_t Count(FaultSite site) const {
    return counts_[static_cast<size_t>(site)];
  }

  // Total faults actually injected (test bookkeeping).
  uint64_t injected() const { return injected_; }

  void ResetCounts() {
    counts_.fill(0);
    armed_ = false;
  }

 private:
  FaultInjector() { counts_.fill(0); }

  std::array<uint64_t, kFaultSiteCount> counts_{};
  bool armed_ = false;
  FaultSite armed_site_ = FaultSite::kPatchWrite;
  uint64_t trigger_at_ = 0;
  uint64_t injected_ = 0;
};

// Convenience RAII guard: arms on construction, disarms on destruction (so a
// test that ASSERTs out mid-sweep cannot leak an armed trigger into the next
// test).
class ScopedFault {
 public:
  ScopedFault(FaultSite site, uint64_t hit) {
    FaultInjector::Instance().Arm(site, hit);
  }
  ~ScopedFault() { FaultInjector::Instance().Disarm(); }

  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;
};

}  // namespace mv

#endif  // MULTIVERSE_SRC_SUPPORT_FAULTPOINT_H_

// The high-traffic server case study (docs/INTERNALS.md §18, EXPERIMENTS.md
// S9): an event-loop request processor whose hot path is gated by four
// multiversed switches, the musl lock-elision pattern (libc.h) generalized to
// a server's operational knobs:
//
//   srv_log_enabled   request logging on/off (empty off-variant — the log
//                     call sites NOP-eradicate when logging is off)
//   srv_checksum_on   payload checksumming on/off
//   srv_trace_on      per-request trace events on/off
//   srv_multi_worker  single- vs multi-worker queue locking (musl's
//                     threads_minus_1: the xchg spinlock disappears from the
//                     committed text in single-worker mode)
//
// The storm bench (bench/bench_commit_storm.cc) serves a deterministic
// request stream through `handle_request` on core 0 while a control plane
// floods switch flips through the CommitScheduler; `serve_batch` is the
// core-1 background load the live protocols must not disturb. `served` counts
// completed requests — the torn-request detector, exactly like the fleet's
// served counter.
#ifndef MULTIVERSE_SRC_WORKLOADS_SERVER_H_
#define MULTIVERSE_SRC_WORKLOADS_SERVER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/program.h"
#include "src/support/status.h"

namespace mv {

// Guest entry points.
inline constexpr char kServerHandler[] = "handle_request";
inline constexpr char kServerBatchFn[] = "serve_batch";
inline constexpr char kServerServedCounter[] = "served";

// The full mvc source of the server (exposed for tests).
std::string ServerSource();

// The four switch names, in descriptor order. All boolean (domain {0, 1}).
const std::vector<std::string>& ServerSwitches();

// Builds the server with `cores` VM cores (the storm bench uses 2: requests
// on core 0, background batch on core 1) and commits the initial
// configuration (all switches 0 — the lean single-worker fast path).
Result<std::unique_ptr<Program>> BuildServer(int cores = 2);

// Serves one request on core 0 and returns the modelled cycles it took —
// the storm bench's per-request service time.
Result<double> ServeRequestCycles(Program* program, uint64_t tenant,
                                  uint64_t payload);

}  // namespace mv

#endif  // MULTIVERSE_SRC_WORKLOADS_SERVER_H_

// Kernel case studies (paper §6.1): spinlock lock elision and paravirtual
// operations, on the simulated kernel substrate.
//
// The spinlock workload reproduces Figure 1 and the left half of Figure 4:
// the same lock/unlock implementation built with four bindings —
//   * kNoElision   — mainline SMP kernel, lock always taken
//   * kDynamicIf   — lock elision via a run-time `if (config_smp)` branch
//   * kMultiverse  — lock elision via multiverse commit
//   * kStaticUp/kStaticSmp — compile-time binding (the #ifdef kernel)
//
// The pvops workload reproduces the right half of Figure 4: interrupt
// enable/disable either through the baseline paravirt patching mechanism
// (indirect calls recorded manually, custom no-scratch calling convention)
// or through multiversed function-pointer switches, on native hardware and
// inside a (simulated) Xen guest.
#ifndef MULTIVERSE_SRC_WORKLOADS_KERNEL_H_
#define MULTIVERSE_SRC_WORKLOADS_KERNEL_H_

#include <memory>
#include <string>

#include "src/baseline/paravirt.h"
#include "src/core/program.h"
#include "src/support/status.h"

namespace mv {

// --- Spinlock / lock elision -----------------------------------------------

enum class SpinBinding {
  kNoElision,   // mainline: no config_smp check, lock always taken
  kDynamicIf,   // dynamic variability: branch on config_smp
  kMultiverse,  // multiversed config_smp + commit
  kStaticUp,    // compile-time config_smp = 0
  kStaticSmp,   // compile-time config_smp = 1
};

const char* SpinBindingName(SpinBinding binding);

// mvc source of the spinlock kernel for a given binding (exposed for tests).
std::string SpinlockKernelSource(SpinBinding binding);

// Builds the kernel; for dynamic bindings config_smp starts at 0.
Result<std::unique_ptr<Program>> BuildSpinlockKernel(SpinBinding binding);

// Sets the SMP mode: writes config_smp (where it exists) and, for the
// multiverse kernel, re-commits. No-op for static/no-elision kernels.
Status SetSmpMode(Program* program, SpinBinding binding, bool smp);

// Mean cycles for one spin_lock_irq + spin_unlock_irq pair (warm predictors,
// loop overhead subtracted) — the Figure 1 / Figure 4 metric.
Result<double> MeasureSpinlockPair(Program* program, uint64_t iterations = 200'000);

// --- Paravirtual operations -------------------------------------------------

enum class PvBinding {
  kCurrent,     // baseline PV-Ops patching (indirect -> direct, pvop convention)
  kMultiverse,  // multiversed function-pointer switches, standard convention
  kStaticOff,   // paravirtualization compiled out: direct native calls
};

const char* PvBindingName(PvBinding binding);

std::string PvopsKernelSource(PvBinding binding);

struct PvopsKernel {
  std::unique_ptr<Program> program;
  std::unique_ptr<ParavirtPatcher> baseline;  // only for kCurrent
};

// Builds the pvops kernel and performs "boot": assigns the pvop pointers for
// the environment (native vs. Xen guest) and runs the respective patcher.
Result<PvopsKernel> BuildPvopsKernel(PvBinding binding, bool xen_guest);

// Mean cycles for one sti+cli pair through the pvop layer.
Result<double> MeasurePvopPair(Program* program, uint64_t iterations = 200'000);

}  // namespace mv

#endif  // MULTIVERSE_SRC_WORKLOADS_KERNEL_H_

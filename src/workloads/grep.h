// The GNU-grep case study (paper §6.2.3): the multibyte-mode variable in the
// inner matching loop.
//
// grep decides once at startup — from the locale and the pattern — whether
// the matcher must handle multi-byte characters, then checks that mode inside
// the match loop forever after. The workload searches for the paper's
// pattern "a.a" in hexadecimal-formatted random text; committing
// mb_cur_max = 1 specializes the multibyte checks away.
#ifndef MULTIVERSE_SRC_WORKLOADS_GREP_H_
#define MULTIVERSE_SRC_WORKLOADS_GREP_H_

#include <memory>
#include <string>

#include "src/core/program.h"
#include "src/support/status.h"

namespace mv {

inline constexpr uint64_t kGrepBufferSize = 1 << 20;  // scaled from the paper's 2 GiB

std::string GrepSource();

// Builds the grep program and fills its buffer with hex text.
Result<std::unique_ptr<Program>> BuildGrep(uint64_t seed = 42);

// Sets the (locale-derived) multibyte mode; with `commit` the specialized
// matcher is installed, matching the paper's startup-time commit.
Status SetGrepMode(Program* program, int mb_cur_max, bool commit);

// Runs the matcher over `len` bytes `passes` times; returns total cycles and
// the match count (for correctness cross-checks).
struct GrepRunResult {
  double cycles = 0;
  uint64_t matches = 0;
};
Result<GrepRunResult> RunGrep(Program* program, uint64_t len = kGrepBufferSize,
                              int passes = 4);

}  // namespace mv

#endif  // MULTIVERSE_SRC_WORKLOADS_GREP_H_

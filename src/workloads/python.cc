#include "src/workloads/python.h"

#include "src/workloads/harness.h"

namespace mv {

namespace {

constexpr char kPythonGcSource[] = R"(
__attribute__((multiverse)) int gc_enabled = 1;

unsigned char obj_arena[1048576];
long obj_brk;
long gc_head;
long gc_count;

// _PyObject_GC_Alloc: allocate an object with a GC head; when the collector
// is enabled, link it into the generation-0 list and bump the counter.
__attribute__((multiverse))
long pyobject_gc_alloc(long basicsize) {
  long total;
  long p;
  total = (basicsize + 31) & ~15;   // 16-byte GC head + alignment
  if (obj_brk + total > 1048576) {
    obj_brk = 0;                     // arena wrap (benchmark-friendly epoch)
    gc_head = 0;
    gc_count = 0;
  }
  p = (long)obj_arena + obj_brk;
  obj_brk = obj_brk + total;
  if (gc_enabled) {
    ((long*)p)[0] = gc_head;         // _gc_next
    gc_head = p;
    gc_count = gc_count + 1;
  }
  return p + 16;
}

void gc_set_enabled_commit(long enabled) {
  gc_enabled = (int)enabled;
  __builtin_vmcall(2, 0);  // multiverse_commit() inside gc.enable()/disable()
}

void gc_set_enabled_nocommit(long enabled) {
  gc_enabled = (int)enabled;
}

void bench_alloc(long n) {
  long i;
  for (i = 0; i < n; i = i + 1) {
    pyobject_gc_alloc(32);
  }
}

void bench_empty(long n) {
  long i;
  for (i = 0; i < n; i = i + 1) {
  }
}
)";

}  // namespace

std::string PythonGcSource() { return kPythonGcSource; }

Result<std::unique_ptr<Program>> BuildPythonGc() {
  BuildOptions options;
  return Program::Build({{"mini_cpython", kPythonGcSource}}, options);
}

Status SetGcEnabled(Program* program, bool enabled, bool commit) {
  const char* setter = commit ? "gc_set_enabled_commit" : "gc_set_enabled_nocommit";
  Result<uint64_t> result = program->Call(setter, {enabled ? 1ull : 0ull});
  if (!result.ok()) {
    return result.status();
  }
  if (!commit) {
    Result<PatchStats> revert = program->runtime().Revert();
    if (!revert.ok()) {
      return revert.status();
    }
  }
  return Status::Ok();
}

Result<double> MeasureGcAlloc(Program* program, uint64_t iterations) {
  return MeasurePerOpCycles(program, "bench_alloc", "bench_empty", iterations);
}

}  // namespace mv

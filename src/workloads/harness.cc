#include "src/workloads/harness.h"

#include <vector>

#include "src/support/rng.h"

namespace mv {

Result<double> MeasureCallCycles(Program* program, const std::string& loop_fn,
                                 uint64_t iterations, uint64_t max_steps) {
  Core& core = program->vm().core(0);
  const uint64_t before = core.ticks;
  Result<uint64_t> result = program->Call(loop_fn, {iterations}, max_steps);
  if (!result.ok()) {
    return result.status();
  }
  return TicksToCycles(core.ticks - before);
}

Result<double> MeasurePerOpCycles(Program* program, const std::string& loop_fn,
                                  const std::string& empty_fn, uint64_t iterations) {
  // Warm-up pass: fills the branch predictors and the icache, like the
  // paper's repeated-sample methodology.
  MV_ASSIGN_OR_RETURN(double warmup, MeasureCallCycles(program, loop_fn, iterations / 10 + 1));
  (void)warmup;
  MV_ASSIGN_OR_RETURN(double loop, MeasureCallCycles(program, loop_fn, iterations));
  MV_ASSIGN_OR_RETURN(double empty_warm,
                      MeasureCallCycles(program, empty_fn, iterations / 10 + 1));
  (void)empty_warm;
  MV_ASSIGN_OR_RETURN(double empty, MeasureCallCycles(program, empty_fn, iterations));
  return (loop - empty) / static_cast<double>(iterations);
}

Status FillHexText(Program* program, const std::string& buffer_symbol, uint64_t len,
                   uint64_t seed) {
  MV_ASSIGN_OR_RETURN(const uint64_t addr, program->SymbolAddress(buffer_symbol));
  static const char kHex[] = "0123456789abcdef";
  Rng rng(seed);
  std::vector<uint8_t> text(len);
  for (uint64_t i = 0; i < len; ++i) {
    if ((i + 1) % 64 == 0) {
      text[i] = '\n';
    } else {
      text[i] = static_cast<uint8_t>(kHex[rng.NextBelow(16)]);
    }
  }
  return program->vm().memory().WriteRaw(addr, text.data(), len);
}

}  // namespace mv

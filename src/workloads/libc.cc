#include "src/workloads/libc.h"

#include "src/workloads/harness.h"

namespace mv {

namespace {

// The mini musl. Lock functions follow musl's structure: __lock/__unlock are
// owner-less spinlocks, __lockfile/__unlockfile guard the FILE object; all
// are skipped when only one thread runs (threads_minus_1 == 0).
constexpr char kLibcSource[] = R"(
__attribute__((multiverse)) int threads_minus_1;

int malloc_lock_word;
int rand_lock_word;
int file_lock_word;

__attribute__((multiverse))
void libc_lock(int* l) {
  if (threads_minus_1) {
    while (__builtin_xchg(l, 1)) {
      __builtin_pause();
    }
  }
}

__attribute__((multiverse))
void libc_unlock(int* l) {
  if (threads_minus_1) {
    *l = 0;
  }
}

__attribute__((multiverse))
void lockfile() {
  if (threads_minus_1) {
    while (__builtin_xchg(&file_lock_word, 1)) {
      __builtin_pause();
    }
  }
}

__attribute__((multiverse))
void unlockfile() {
  if (threads_minus_1) {
    file_lock_word = 0;
  }
}

// --- malloc: LIFO free list with a bump-allocated arena ---------------------
// chunk layout: [size:8][next:8] header, payload afterwards.

unsigned char heap[262144];
long heap_brk;
long free_head;

long malloc_(long n) {
  long cur;
  long result;
  libc_lock(&malloc_lock_word);
  if (n == 0) {
    // malloc(0) may return NULL (the paper benchmarks it separately).
    libc_unlock(&malloc_lock_word);
    return 0;
  }
  n = (n + 15) & ~15;
  cur = free_head;
  if (cur != 0) {
    long* c = (long*)cur;
    if (c[0] >= n) {
      // Fast path: reuse the most recently freed chunk.
      free_head = c[1];
      libc_unlock(&malloc_lock_word);
      return cur + 16;
    }
  }
  // Slow path: first-fit walk, then bump allocation.
  {
    long prev = 0;
    cur = free_head;
    while (cur != 0) {
      long* c = (long*)cur;
      if (c[0] >= n) {
        if (prev != 0) {
          ((long*)prev)[1] = c[1];
        } else {
          free_head = c[1];
        }
        libc_unlock(&malloc_lock_word);
        return cur + 16;
      }
      prev = cur;
      cur = c[1];
    }
  }
  if (heap_brk + n + 16 > 262144) {
    libc_unlock(&malloc_lock_word);
    return 0;
  }
  result = (long)heap + heap_brk;
  heap_brk = heap_brk + n + 16;
  ((long*)result)[0] = n;
  libc_unlock(&malloc_lock_word);
  return result + 16;
}

void free_(long p) {
  long* c;
  if (p == 0) {
    return;
  }
  libc_lock(&malloc_lock_word);
  c = (long*)(p - 16);
  c[1] = free_head;
  free_head = p - 16;
  libc_unlock(&malloc_lock_word);
}

// --- random(): locked 64-bit LCG --------------------------------------------

unsigned long rand_state = 1;

long random_() {
  long r;
  libc_lock(&rand_lock_word);
  rand_state = rand_state * 6364136223846793005ul + 1442695040888963407ul;
  r = (long)(rand_state >> 33);
  libc_unlock(&rand_lock_word);
  return r;
}

// --- fputc(): buffered byte output with FILE locking -------------------------

unsigned char fbuf[8192];
long fpos;
long flush_count;

long fputc_(long c) {
  lockfile();
  fbuf[fpos & 8191] = (unsigned char)c;
  fpos = fpos + 1;
  if ((fpos & 8191) == 0) {
    flush_count = flush_count + 1;
  }
  unlockfile();
  return c;
}

// --- thread accounting (pthread_create/exit keep threads_minus_1 current) ---

void set_threads_commit(long n) {
  threads_minus_1 = (int)n;
  __builtin_vmcall(2, 0);  // multiverse_commit()
}

void set_threads_nocommit(long n) {
  threads_minus_1 = (int)n;
}

// --- benchmark loops ---------------------------------------------------------

void bench_random(long n) {
  long i;
  for (i = 0; i < n; i = i + 1) {
    random_();
  }
}

void bench_malloc0(long n) {
  long i;
  for (i = 0; i < n; i = i + 1) {
    free_(malloc_(0));
  }
}

void bench_malloc1(long n) {
  long i;
  for (i = 0; i < n; i = i + 1) {
    free_(malloc_(1));
  }
}

void bench_fputc(long n) {
  long i;
  for (i = 0; i < n; i = i + 1) {
    fputc_('a');
  }
}

void bench_empty(long n) {
  long i;
  for (i = 0; i < n; i = i + 1) {
  }
}
)";

}  // namespace

std::string LibcSource() { return kLibcSource; }

Result<std::unique_ptr<Program>> BuildLibc() {
  BuildOptions options;
  return Program::Build({{"mini_musl", kLibcSource}}, options);
}

Status SetThreadMode(Program* program, int threads_minus_1, bool commit) {
  const char* setter = commit ? "set_threads_commit" : "set_threads_nocommit";
  Result<uint64_t> result =
      program->Call(setter, {static_cast<uint64_t>(threads_minus_1)});
  if (!result.ok()) {
    return result.status();
  }
  if (!commit) {
    // The unmodified baseline must run fully generic code.
    Result<PatchStats> revert = program->runtime().Revert();
    if (!revert.ok()) {
      return revert.status();
    }
  }
  return Status::Ok();
}

Result<LibcBenchResult> MeasureLibc(Program* program, uint64_t iterations) {
  LibcBenchResult result;
  MV_ASSIGN_OR_RETURN(
      result.random_cycles,
      MeasurePerOpCycles(program, "bench_random", "bench_empty", iterations));
  MV_ASSIGN_OR_RETURN(
      result.malloc0_cycles,
      MeasurePerOpCycles(program, "bench_malloc0", "bench_empty", iterations));
  MV_ASSIGN_OR_RETURN(
      result.malloc1_cycles,
      MeasurePerOpCycles(program, "bench_malloc1", "bench_empty", iterations));
  MV_ASSIGN_OR_RETURN(
      result.fputc_cycles,
      MeasurePerOpCycles(program, "bench_fputc", "bench_empty", iterations));
  return result;
}

}  // namespace mv

#include "src/workloads/kernel.h"

#include "src/support/str.h"
#include "src/workloads/harness.h"

namespace mv {

namespace {

// The spinlock implementation, modelled on the (slightly simplified) Linux
// spinlock of paper Figure 1: interrupt disabling, preemption accounting,
// and — in SMP mode — an atomic test-and-set acquisition loop.
//
// %s placeholders: [0] attribute for config_smp, [1]/[2] attributes for the
// two lock functions, [3] the lock-elision condition blocks.
constexpr char kSpinlockTemplate[] = R"(
%s int config_smp;
int lock_word;
int preempt_count;

%s
void spin_lock_irq(int* lock) {
  __builtin_cli();
  preempt_count = preempt_count + 1;
%s
}

%s
void spin_unlock_irq(int* lock) {
  preempt_count = preempt_count - 1;
%s
  __builtin_sti();
}

void bench_pair(long n) {
  long i;
  for (i = 0; i < n; i = i + 1) {
    spin_lock_irq(&lock_word);
    spin_unlock_irq(&lock_word);
  }
}

void bench_empty(long n) {
  long i;
  for (i = 0; i < n; i = i + 1) {
  }
}
)";

constexpr char kLockAlways[] = R"(
  while (__builtin_xchg(lock, 1)) {
    __builtin_pause();
  })";

constexpr char kLockGuarded[] = R"(
  if (config_smp) {
    while (__builtin_xchg(lock, 1)) {
      __builtin_pause();
    }
  })";

constexpr char kUnlockAlways[] = R"(
  *lock = 0;)";

constexpr char kUnlockGuarded[] = R"(
  if (config_smp) {
    *lock = 0;
  })";

}  // namespace

const char* SpinBindingName(SpinBinding binding) {
  switch (binding) {
    case SpinBinding::kNoElision: return "no-elision (mainline SMP)";
    case SpinBinding::kDynamicIf: return "lock elision [if]";
    case SpinBinding::kMultiverse: return "lock elision [multiverse]";
    case SpinBinding::kStaticUp: return "lock elision [ifdef off]";
    case SpinBinding::kStaticSmp: return "static [ifdef SMP]";
  }
  return "?";
}

std::string SpinlockKernelSource(SpinBinding binding) {
  const bool guarded = binding != SpinBinding::kNoElision;
  const char* mv_attr =
      binding == SpinBinding::kMultiverse ? "__attribute__((multiverse))" : "";
  return StrFormat(kSpinlockTemplate, mv_attr, mv_attr,
                   guarded ? kLockGuarded : kLockAlways, mv_attr,
                   guarded ? kUnlockGuarded : kUnlockAlways);
}

Result<std::unique_ptr<Program>> BuildSpinlockKernel(SpinBinding binding) {
  BuildOptions options;
  switch (binding) {
    case SpinBinding::kStaticUp:
      options.frontend.defines["config_smp"] = 0;
      break;
    case SpinBinding::kStaticSmp:
      options.frontend.defines["config_smp"] = 1;
      break;
    default:
      break;
  }
  return Program::Build({{"spinlock_kernel", SpinlockKernelSource(binding)}}, options);
}

Status SetSmpMode(Program* program, SpinBinding binding, bool smp) {
  switch (binding) {
    case SpinBinding::kNoElision:
    case SpinBinding::kStaticUp:
    case SpinBinding::kStaticSmp:
      return Status::Ok();
    case SpinBinding::kDynamicIf:
      return program->WriteGlobal("config_smp", smp ? 1 : 0, 4);
    case SpinBinding::kMultiverse: {
      MV_RETURN_IF_ERROR(program->WriteGlobal("config_smp", smp ? 1 : 0, 4));
      // Hotplug-style reconfiguration (paper §2): write, then commit.
      Result<PatchStats> stats = program->runtime().Commit();
      if (!stats.ok()) {
        return stats.status();
      }
      return Status::Ok();
    }
  }
  return Status::Ok();
}

Result<double> MeasureSpinlockPair(Program* program, uint64_t iterations) {
  return MeasurePerOpCycles(program, "bench_pair", "bench_empty", iterations);
}

// ---------------------------------------------------------------------------
// PV-Ops

namespace {

// %s placeholders: [0] attribute for the two pvop pointers (multiverse or
// none), [1] the body of irq_toggle (indirect pvop calls or direct native
// calls).
constexpr char kPvopsTemplate[] = R"(
%s void (*pv_irq_enable)(void);
%s void (*pv_irq_disable)(void);

void native_irq_enable() { __builtin_sti(); }
void native_irq_disable() { __builtin_cli(); }

// Xen adaptors. Under the baseline mechanism these use the kernel's custom
// no-scratch-register calling convention (pvop attribute); the multiversed
// kernel compiles them with the standard convention (paper §6.1).
%s void xen_irq_enable() { __builtin_hypercall(0); }
%s void xen_irq_disable() { __builtin_hypercall(1); }

void irq_toggle() {
%s
}

void bench_toggle(long n) {
  long i;
  for (i = 0; i < n; i = i + 1) {
    irq_toggle();
  }
}

void bench_empty(long n) {
  long i;
  for (i = 0; i < n; i = i + 1) {
  }
}
)";

constexpr char kToggleIndirect[] = R"(
  pv_irq_enable();
  pv_irq_disable();)";

constexpr char kToggleDirect[] = R"(
  native_irq_enable();
  native_irq_disable();)";

}  // namespace

const char* PvBindingName(PvBinding binding) {
  switch (binding) {
    case PvBinding::kCurrent: return "PV-Op patching [current]";
    case PvBinding::kMultiverse: return "PV-Op patching [multiverse]";
    case PvBinding::kStaticOff: return "PV-Op disabled [ifdef]";
  }
  return "?";
}

std::string PvopsKernelSource(PvBinding binding) {
  const char* ptr_attr =
      binding == PvBinding::kMultiverse ? "__attribute__((multiverse))" : "";
  const char* xen_attr =
      binding == PvBinding::kCurrent ? "__attribute__((pvop))" : "";
  const char* body =
      binding == PvBinding::kStaticOff ? kToggleDirect : kToggleIndirect;
  return StrFormat(kPvopsTemplate, ptr_attr, ptr_attr, xen_attr, xen_attr, body);
}

Result<PvopsKernel> BuildPvopsKernel(PvBinding binding, bool xen_guest) {
  BuildOptions options;
  options.hypervisor_guest = xen_guest;
  Result<std::unique_ptr<Program>> program =
      Program::Build({{"pvops_kernel", PvopsKernelSource(binding)}}, options);
  if (!program.ok()) {
    return program.status();
  }
  PvopsKernel kernel;
  kernel.program = std::move(*program);

  if (binding != PvBinding::kStaticOff) {
    // Boot-time pvop assignment for the detected environment.
    const char* enable_impl = xen_guest ? "xen_irq_enable" : "native_irq_enable";
    const char* disable_impl = xen_guest ? "xen_irq_disable" : "native_irq_disable";
    MV_ASSIGN_OR_RETURN(const uint64_t enable_addr,
                        kernel.program->SymbolAddress(enable_impl));
    MV_ASSIGN_OR_RETURN(const uint64_t disable_addr,
                        kernel.program->SymbolAddress(disable_impl));
    MV_RETURN_IF_ERROR(kernel.program->WriteGlobal(
        "pv_irq_enable", static_cast<int64_t>(enable_addr), 8));
    MV_RETURN_IF_ERROR(kernel.program->WriteGlobal(
        "pv_irq_disable", static_cast<int64_t>(disable_addr), 8));

    if (binding == PvBinding::kCurrent) {
      Result<ParavirtPatcher> patcher =
          ParavirtPatcher::Attach(&kernel.program->vm(), kernel.program->image());
      if (!patcher.ok()) {
        return patcher.status();
      }
      kernel.baseline = std::make_unique<ParavirtPatcher>(std::move(*patcher));
      Result<PvPatchStats> stats = kernel.baseline->PatchAll();
      if (!stats.ok()) {
        return stats.status();
      }
    } else {
      Result<PatchStats> stats = kernel.program->runtime().Commit();
      if (!stats.ok()) {
        return stats.status();
      }
    }
  }
  return kernel;
}

Result<double> MeasurePvopPair(Program* program, uint64_t iterations) {
  return MeasurePerOpCycles(program, "bench_toggle", "bench_empty", iterations);
}

}  // namespace mv

#include "src/workloads/server.h"

#include "src/vm/vm.h"

namespace mv {

namespace {

// The server kernel. Every operational knob follows the musl pattern: the
// switch gates a block whose off-variant is empty, so a committed "off"
// NOP-eradicates the whole feature from the call sites.
constexpr char kServerSource[] = R"(
__attribute__((multiverse)) int srv_log_enabled;
__attribute__((multiverse)) int srv_checksum_on;
__attribute__((multiverse)) int srv_trace_on;
__attribute__((multiverse)) int srv_multi_worker;

int queue_lock_word;
int bg_lock_word;
long served;
long log_bytes;
long trace_events;
long checksum_acc;
unsigned char logbuf[4096];
long logpos;

__attribute__((multiverse))
void srv_lock(int* l) {
  if (srv_multi_worker) {
    while (__builtin_xchg(l, 1)) {
      __builtin_pause();
    }
  }
}

// Deliberately NOT gated on srv_multi_worker: the storm commits at arbitrary
// points, including while a worker sits inside its critical section. A
// guarded unlock elided by such a commit would leak the held lock and wedge
// the shard when locking is later re-enabled; an unconditional store-zero is
// idempotent under every interleaving (releasing an untaken lock writes the
// value it already has). Only the expensive half — the xchg spin in
// srv_lock — is worth eliding anyway.
void srv_unlock(int* l) {
  *l = 0;
}

__attribute__((multiverse))
void srv_log(long tenant, long payload) {
  if (srv_log_enabled) {
    logbuf[logpos & 4095] = (unsigned char)(tenant ^ payload);
    logpos = logpos + 1;
    log_bytes = log_bytes + 1;
  }
}

__attribute__((multiverse))
void srv_trace(long marker) {
  if (srv_trace_on) {
    trace_events = trace_events + marker;
  }
}

__attribute__((multiverse))
long srv_checksum(long payload) {
  long sum;
  long i;
  sum = 0;
  if (srv_checksum_on) {
    for (i = 0; i < 8; i = i + 1) {
      sum = sum * 31 + ((payload >> (i * 8)) & 255);
    }
    checksum_acc = checksum_acc + sum;
  }
  return sum;
}

// One request: lock the worker shard's queue, do the fixed-cost application
// work, run the optional features, publish completion. The application work
// (a short mixing loop) dominates when all switches are off — that is the
// flat-p99 baseline. Each worker shard owns its queue lock, so a shard
// parked mid-request (core 1 between scheduler drains) never deadlocks the
// event loop — the lock guards the shard's queue, not the server.
long handle_request_on(long tenant, long payload, int* l) {
  long work;
  long i;
  srv_trace(1);
  srv_lock(l);
  work = payload;
  for (i = 0; i < 16; i = i + 1) {
    work = work * 6364136223846793005 + tenant;
    work = work ^ (work >> 29);
  }
  srv_checksum(work);
  srv_log(tenant, work);
  served = served + 1;
  srv_unlock(l);
  srv_trace(-1);
  return work;
}

long handle_request(long tenant, long payload) {
  return handle_request_on(tenant, payload, &queue_lock_word);
}

// Background batch for the second core (its own shard lock): the mutator the
// live protocols must not disturb while storms commit.
long serve_batch(long base, long n) {
  long i;
  long acc;
  acc = 0;
  for (i = 0; i < n; i = i + 1) {
    acc = acc + handle_request_on(base + (i & 7),
                                  base * 2862933555777941757 + i,
                                  &bg_lock_word);
  }
  return acc;
}

void bench_requests(long n) {
  long i;
  for (i = 0; i < n; i = i + 1) {
    handle_request(i & 7, i * 40503 + 9);
  }
}

void bench_empty(long n) {
  long i;
  for (i = 0; i < n; i = i + 1) {
  }
}
)";

}  // namespace

std::string ServerSource() { return kServerSource; }

const std::vector<std::string>& ServerSwitches() {
  static const std::vector<std::string>* kSwitches = new std::vector<std::string>{
      "srv_log_enabled", "srv_checksum_on", "srv_trace_on", "srv_multi_worker"};
  return *kSwitches;
}

Result<std::unique_ptr<Program>> BuildServer(int cores) {
  BuildOptions options;
  options.vm_cores = cores;
  MV_ASSIGN_OR_RETURN(std::unique_ptr<Program> program,
                      Program::Build({{"server", kServerSource}}, options));
  // Commit the initial all-off configuration so the program starts at a
  // committed fixpoint (the CommitScheduler's elision baseline).
  Result<PatchStats> committed = program->runtime().Commit();
  if (!committed.ok()) {
    return committed.status();
  }
  return program;
}

Result<double> ServeRequestCycles(Program* program, uint64_t tenant,
                                  uint64_t payload) {
  Core& core = program->vm().core(0);
  const uint64_t before = core.ticks;
  Result<uint64_t> result =
      program->Call(kServerHandler, {tenant, payload}, 10'000'000);
  if (!result.ok()) {
    return result.status();
  }
  return TicksToCycles(core.ticks - before);
}

}  // namespace mv

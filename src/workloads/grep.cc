#include "src/workloads/grep.h"

#include "src/workloads/harness.h"

namespace mv {

namespace {

// Matcher for the pattern "a.a" (first/last byte 'a', any middle byte except
// newline), structured like grep's inner loop: a fast skip scan for the first
// pattern byte, then candidate validation — where the multibyte mode matters.
constexpr char kGrepSource[] = R"(
__attribute__((multiverse)) int mb_cur_max;

unsigned char gbuf[1048576];
long match_count;

__attribute__((multiverse))
long grep_execute(long len) {
  long i;
  long count;
  count = 0;
  i = 0;
  while (i + 2 < len) {
    unsigned char c;
    c = gbuf[i];
    if (c != 'a') {
      i = i + 1;
      continue;
    }
    if (mb_cur_max > 1) {
      // Multibyte handling: reject candidates inside a multi-byte sequence
      // and re-synchronize (stand-in for grep's mbrlen() bookkeeping).
      if (gbuf[i] > 127) {
        i = i + 2;
        continue;
      }
      if (i > 0) {
        if (gbuf[i - 1] > 193) {
          i = i + 1;
          continue;
        }
      }
    }
    if (gbuf[i + 1] != 10) {
      if (gbuf[i + 2] == 'a') {
        count = count + 1;
      }
    }
    i = i + 1;
  }
  match_count = count;
  return count;
}

void grep_set_mode_commit(long mode) {
  mb_cur_max = (int)mode;
  __builtin_vmcall(2, 0);  // multiverse_commit() after locale setup
}

void grep_set_mode_nocommit(long mode) {
  mb_cur_max = (int)mode;
}

long bench_grep(long passes) {
  long i;
  long total;
  total = 0;
  for (i = 0; i < passes; i = i + 1) {
    total = total + grep_execute(1048576);
  }
  return total;
}
)";

}  // namespace

std::string GrepSource() { return kGrepSource; }

Result<std::unique_ptr<Program>> BuildGrep(uint64_t seed) {
  BuildOptions options;
  Result<std::unique_ptr<Program>> program =
      Program::Build({{"mini_grep", kGrepSource}}, options);
  if (!program.ok()) {
    return program.status();
  }
  MV_RETURN_IF_ERROR(FillHexText(program->get(), "gbuf", kGrepBufferSize, seed));
  return program;
}

Status SetGrepMode(Program* program, int mb_cur_max, bool commit) {
  const char* setter = commit ? "grep_set_mode_commit" : "grep_set_mode_nocommit";
  Result<uint64_t> result = program->Call(setter, {static_cast<uint64_t>(mb_cur_max)});
  if (!result.ok()) {
    return result.status();
  }
  if (!commit) {
    Result<PatchStats> revert = program->runtime().Revert();
    if (!revert.ok()) {
      return revert.status();
    }
  }
  return Status::Ok();
}

Result<GrepRunResult> RunGrep(Program* program, uint64_t len, int passes) {
  (void)len;
  GrepRunResult result;
  Core& core = program->vm().core(0);
  const uint64_t before = core.ticks;
  Result<uint64_t> matches =
      program->Call("bench_grep", {static_cast<uint64_t>(passes)}, 4'000'000'000ull);
  if (!matches.ok()) {
    return matches.status();
  }
  result.cycles = TicksToCycles(core.ticks - before);
  result.matches = *matches;
  return result;
}

}  // namespace mv

// The cPython case study (paper §6.2.1): the garbage collector's enable flag
// on the object-allocation path (_PyObject_GC_Alloc).
//
// The flag only changes through gc.enable()/gc.disable() API calls, making it
// an ideal configuration switch. The paper could not measure a significant
// effect on real hardware due to jitter; our deterministic simulator can, so
// the benchmark reports the (small) effect and records the paper's null
// result alongside.
#ifndef MULTIVERSE_SRC_WORKLOADS_PYTHON_H_
#define MULTIVERSE_SRC_WORKLOADS_PYTHON_H_

#include <memory>
#include <string>

#include "src/core/program.h"
#include "src/support/status.h"

namespace mv {

std::string PythonGcSource();

Result<std::unique_ptr<Program>> BuildPythonGc();

// gc.enable()/gc.disable(); with `commit`, the allocation path is re-bound.
Status SetGcEnabled(Program* program, bool enabled, bool commit);

// Mean cycles per _PyObject_GC_Alloc-equivalent call.
Result<double> MeasureGcAlloc(Program* program, uint64_t iterations = 100'000);

}  // namespace mv

#endif  // MULTIVERSE_SRC_WORKLOADS_PYTHON_H_

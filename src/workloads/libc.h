// The musl-libc case study (paper §6.2.2): single-thread lock elision.
//
// A miniature C library written in mvc: an owner-less spinlock (musl's
// __lock), a stdio file lock (__lockfile), a free-list malloc/free, an
// LCG random(), and a buffered fputc(). The `threads_minus_1` switch —
// maintained at (simulated) thread creation/exit — gates every lock; with
// multiverse the locks are committed away entirely in single-threaded mode
// (the empty variant bodies are NOP-inlined into the call sites).
#ifndef MULTIVERSE_SRC_WORKLOADS_LIBC_H_
#define MULTIVERSE_SRC_WORKLOADS_LIBC_H_

#include <memory>
#include <string>

#include "src/core/program.h"
#include "src/support/status.h"

namespace mv {

// The full mvc source of the mini libc (exposed for tests).
std::string LibcSource();

Result<std::unique_ptr<Program>> BuildLibc();

// Enters single-/multi-threaded mode. With `commit`, the guest calls the
// in-guest multiverse_commit() after updating threads_minus_1 (the paper's
// integration at pthread_create/exit); without, the switch is evaluated
// dynamically on every lock (the unmodified-musl baseline).
Status SetThreadMode(Program* program, int threads_minus_1, bool commit);

// The four benchmarked functions of Figure 5. `iterations` calls each.
struct LibcBenchResult {
  double random_cycles = 0;   // per call
  double malloc0_cycles = 0;  // malloc(0) (+ free(NULL))
  double malloc1_cycles = 0;  // malloc(1) + free
  double fputc_cycles = 0;    // fputc('a')
};
Result<LibcBenchResult> MeasureLibc(Program* program, uint64_t iterations = 100'000);

}  // namespace mv

#endif  // MULTIVERSE_SRC_WORKLOADS_LIBC_H_

// Shared measurement harness for the case-study workloads.
//
// Measurements mirror the paper's methodology (§6.1, §7.5): a high-resolution
// cycle counter (our deterministic VM tick counter plays the role of the
// TSC), tight-loop microbenchmarks with warmed predictors, and loop-overhead
// subtraction. Unlike the paper we need no outlier filtering — the simulator
// is deterministic.
#ifndef MULTIVERSE_SRC_WORKLOADS_HARNESS_H_
#define MULTIVERSE_SRC_WORKLOADS_HARNESS_H_

#include <cstdint>
#include <string>

#include "src/core/program.h"
#include "src/support/status.h"

namespace mv {

// Nominal clock for converting modelled cycles to wall-clock figures
// (the paper's machines: i5-7400 @ 3.0 GHz, i5-6400 @ 2.7 GHz burst ~3.3).
inline constexpr double kNominalGHz = 3.0;

// Calls `loop_fn(iterations)` in the guest and returns the total modelled
// cycles consumed by the call.
Result<double> MeasureCallCycles(Program* program, const std::string& loop_fn,
                                 uint64_t iterations,
                                 uint64_t max_steps = 4'000'000'000ull);

// Per-iteration cost of `loop_fn` with the cost of `empty_fn` (same loop,
// empty body) subtracted — the paper's "mean run-time (cycles)" per
// operation.
Result<double> MeasurePerOpCycles(Program* program, const std::string& loop_fn,
                                  const std::string& empty_fn, uint64_t iterations);

// Fills `buffer_symbol` (a global byte array of at least `len` bytes) with
// hexadecimal-formatted pseudo-random text, newline every 64 characters —
// the grep workload's input (§6.2.3).
Status FillHexText(Program* program, const std::string& buffer_symbol, uint64_t len,
                   uint64_t seed);

inline double CyclesToMs(double cycles) { return cycles / (kNominalGHz * 1e6); }
inline double CyclesToSeconds(double cycles) { return cycles / (kNominalGHz * 1e9); }

}  // namespace mv

#endif  // MULTIVERSE_SRC_WORKLOADS_HARNESS_H_

#include "src/obj/object.h"

namespace mv {

int ObjectFile::FindOrAddSection(const std::string& section_name, bool is_code) {
  const int found = FindSection(section_name);
  if (found >= 0) {
    return found;
  }
  Section section;
  section.name = section_name;
  section.is_code = is_code;
  sections.push_back(std::move(section));
  return static_cast<int>(sections.size() - 1);
}

int ObjectFile::FindSection(const std::string& section_name) const {
  for (size_t i = 0; i < sections.size(); ++i) {
    if (sections[i].name == section_name) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

void ObjectFile::AddSymbol(std::string symbol_name, int section, uint64_t offset) {
  ObjSymbol symbol;
  symbol.name = std::move(symbol_name);
  symbol.section = section;
  symbol.offset = offset;
  symbols.push_back(std::move(symbol));
}

}  // namespace mv

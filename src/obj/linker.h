// Linker and loader: merges MVO objects, resolves symbols, applies
// relocations, and installs the image into VM memory with the protections a
// real OS would use (text R+X, rodata/descriptors R, data/stack RW).
#ifndef MULTIVERSE_SRC_OBJ_LINKER_H_
#define MULTIVERSE_SRC_OBJ_LINKER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/obj/object.h"
#include "src/support/status.h"
#include "src/vm/vm.h"

namespace mv {

struct LinkOptions {
  uint64_t text_base = 0x1000;
  uint64_t stack_size = 256 * 1024;
};

struct SectionPlacement {
  uint64_t addr = 0;
  uint64_t size = 0;
};

// The loaded program image. Section placements cover the *merged* sections;
// the multiverse runtime reads its descriptor tables directly from them.
struct Image {
  std::map<std::string, uint64_t> symbols;
  std::map<std::string, SectionPlacement> sections;
  uint64_t text_base = 0;
  uint64_t text_size = 0;
  uint64_t stack_top = 0;   // initial SP
  uint64_t stack_base = 0;  // bottom of the stack region (stack_top - stack_size)
  uint64_t halt_stub = 0;   // address of a HLT; used as top-level return address

  Result<uint64_t> SymbolAddress(const std::string& name) const;
};

// Links the objects and loads the result into `vm` (memory must be large
// enough). Duplicate strong symbols and unresolved references are errors.
Result<Image> LinkAndLoad(const std::vector<ObjectFile>& objects, const LinkOptions& options,
                          Vm* vm);

// Prepares core 0 (or `core`) of the VM to call `fn_addr` with up to 6
// arguments: sets SP below stack_top, pushes the halt stub as return address,
// sets the PC. Running the VM then executes the call and exits with kHalt
// when the function returns; its return value is in r0.
void SetupCall(const Image& image, Vm* vm, uint64_t fn_addr,
               const std::vector<uint64_t>& args, int core = 0);

}  // namespace mv

#endif  // MULTIVERSE_SRC_OBJ_LINKER_H_

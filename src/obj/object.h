// MVO — the relocatable object format of the mvc toolchain.
//
// Mirrors the ELF properties multiverse relies on (paper §5):
//  * sections with the same name from different objects are concatenated by
//    the linker, so descriptor arrays from all translation units form one
//    contiguous table addressable as a regular array;
//  * descriptors reference code and data via relocations, so the linker
//    injects the final numeric addresses, giving relocatable /
//    position-independent support "for free".
#ifndef MULTIVERSE_SRC_OBJ_OBJECT_H_
#define MULTIVERSE_SRC_OBJ_OBJECT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/support/status.h"

namespace mv {

struct Section {
  std::string name;
  std::vector<uint8_t> data;
  uint32_t align = 8;
  bool is_code = false;
};

struct ObjSymbol {
  std::string name;
  int section = -1;       // -1: undefined (resolved by the linker)
  uint64_t offset = 0;
  bool is_defined() const { return section >= 0; }
};

enum class RelocType : uint8_t {
  kAbs64,  // 8-byte absolute address
  kAbs32,  // 4-byte absolute address (must fit)
  kRel32,  // 4-byte pc-relative: S + A - (P + 4), like x86 CALL/JMP rel32
};

struct Reloc {
  int section = 0;          // section containing the field to patch
  uint64_t offset = 0;      // offset of the field within the section
  RelocType type = RelocType::kAbs64;
  std::string symbol;       // target symbol; empty = section-relative
  int target_section = -1;  // used when symbol is empty
  int64_t addend = 0;
};

struct ObjectFile {
  std::string name;
  std::vector<Section> sections;
  std::vector<ObjSymbol> symbols;
  std::vector<Reloc> relocs;

  int FindOrAddSection(const std::string& name, bool is_code = false);
  int FindSection(const std::string& name) const;
  void AddSymbol(std::string name, int section, uint64_t offset);
};

}  // namespace mv

#endif  // MULTIVERSE_SRC_OBJ_OBJECT_H_

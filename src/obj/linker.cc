#include "src/obj/linker.h"

#include <cstring>

#include "src/isa/isa.h"
#include "src/support/str.h"

namespace mv {

namespace {

uint64_t AlignUp(uint64_t value, uint64_t align) {
  return (value + align - 1) & ~(align - 1);
}

// Merged-section layout order. Code first, then read-only descriptor and
// string sections, then writable data.
struct MergePlan {
  std::vector<std::string> order;
  std::map<std::string, uint8_t> perms;
};

MergePlan PlanSections(const std::vector<ObjectFile>& objects) {
  MergePlan plan;
  auto add = [&](const std::string& name, uint8_t perms) {
    for (const std::string& existing : plan.order) {
      if (existing == name) {
        return;
      }
    }
    plan.order.push_back(name);
    plan.perms[name] = perms;
  };
  // Text always first so the base address is predictable.
  add(".text", kPermRead | kPermExec);
  for (const ObjectFile& obj : objects) {
    for (const Section& section : obj.sections) {
      if (section.is_code) {
        add(section.name, kPermRead | kPermExec);
      } else if (StartsWith(section.name, ".mv.") || StartsWith(section.name, ".pv.") ||
                 section.name == ".rodata") {
        add(section.name, kPermRead);
      } else {
        add(section.name, kPermRead | kPermWrite);
      }
    }
  }
  return plan;
}

}  // namespace

Result<uint64_t> Image::SymbolAddress(const std::string& name) const {
  auto it = symbols.find(name);
  if (it == symbols.end()) {
    return Status::NotFound(StrFormat("symbol '%s' not found", name.c_str()));
  }
  return it->second;
}

Result<Image> LinkAndLoad(const std::vector<ObjectFile>& objects, const LinkOptions& options,
                          Vm* vm) {
  Memory& memory = vm->memory();
  const MergePlan plan = PlanSections(objects);

  // --- 1. Lay out merged sections and record per-object section bases. ---
  Image image;
  // object index -> section index -> absolute base address.
  std::vector<std::map<int, uint64_t>> object_section_base(objects.size());

  uint64_t cursor = options.text_base;
  for (const std::string& name : plan.order) {
    const uint64_t section_start = cursor;
    for (size_t oi = 0; oi < objects.size(); ++oi) {
      const ObjectFile& obj = objects[oi];
      const int si = obj.FindSection(name);
      if (si < 0) {
        continue;
      }
      const Section& section = obj.sections[si];
      cursor = AlignUp(cursor, section.align == 0 ? 1 : section.align);
      object_section_base[oi][si] = cursor;
      cursor += section.data.size();
    }
    image.sections[name] = SectionPlacement{section_start, cursor - section_start};
    cursor = AlignUp(cursor, kPageSize);  // page-granular protections
  }

  // The halt stub: a single HLT instruction in its own executable page.
  const uint64_t halt_addr = cursor;
  cursor = AlignUp(cursor + 1, kPageSize);
  image.halt_stub = halt_addr;

  // Stack at the top.
  const uint64_t stack_base = AlignUp(cursor, kPageSize);
  const uint64_t stack_top = stack_base + options.stack_size;
  image.stack_base = stack_base;
  image.stack_top = stack_top;
  if (stack_top > memory.size()) {
    return Status::OutOfRange(
        StrFormat("image does not fit: need %llu bytes of VM memory, have %llu",
                  (unsigned long long)stack_top, (unsigned long long)memory.size()));
  }

  // --- 2. Build the symbol table. ---
  for (size_t oi = 0; oi < objects.size(); ++oi) {
    for (const ObjSymbol& symbol : objects[oi].symbols) {
      if (!symbol.is_defined()) {
        continue;
      }
      auto base_it = object_section_base[oi].find(symbol.section);
      if (base_it == object_section_base[oi].end()) {
        return Status::Internal(StrFormat("symbol '%s' references missing section",
                                          symbol.name.c_str()));
      }
      const uint64_t addr = base_it->second + symbol.offset;
      auto [it, inserted] = image.symbols.emplace(symbol.name, addr);
      if (!inserted) {
        return Status::AlreadyExists(
            StrFormat("duplicate symbol '%s' (defined in multiple objects)",
                      symbol.name.c_str()));
      }
    }
  }
  image.symbols["$halt"] = halt_addr;

  // --- 3. Copy section contents into VM memory. ---
  // Temporarily make everything writable; final protections applied at the end.
  MV_RETURN_IF_ERROR(memory.Protect(0, stack_top, kPermRead | kPermWrite));
  for (size_t oi = 0; oi < objects.size(); ++oi) {
    for (const auto& [si, base] : object_section_base[oi]) {
      const Section& section = objects[oi].sections[static_cast<size_t>(si)];
      if (!section.data.empty()) {
        MV_RETURN_IF_ERROR(memory.WriteRaw(base, section.data.data(), section.data.size()));
      }
    }
  }
  {
    const uint8_t hlt = static_cast<uint8_t>(Op::kHlt);
    MV_RETURN_IF_ERROR(memory.WriteRaw(halt_addr, &hlt, 1));
  }

  // --- 4. Apply relocations. ---
  for (size_t oi = 0; oi < objects.size(); ++oi) {
    const ObjectFile& obj = objects[oi];
    for (const Reloc& reloc : obj.relocs) {
      auto sec_base = object_section_base[oi].find(reloc.section);
      if (sec_base == object_section_base[oi].end()) {
        return Status::Internal(StrFormat("%s: reloc in missing section", obj.name.c_str()));
      }
      const uint64_t field_addr = sec_base->second + reloc.offset;

      uint64_t target = 0;
      if (!reloc.symbol.empty()) {
        auto sym = image.symbols.find(reloc.symbol);
        if (sym == image.symbols.end()) {
          return Status::NotFound(StrFormat("%s: undefined symbol '%s'", obj.name.c_str(),
                                            reloc.symbol.c_str()));
        }
        target = sym->second;
      } else {
        auto tsec = object_section_base[oi].find(reloc.target_section);
        if (tsec == object_section_base[oi].end()) {
          return Status::Internal(
              StrFormat("%s: section-relative reloc to missing section", obj.name.c_str()));
        }
        target = tsec->second;
      }
      target = static_cast<uint64_t>(static_cast<int64_t>(target) + reloc.addend);

      switch (reloc.type) {
        case RelocType::kAbs64: {
          MV_RETURN_IF_ERROR(memory.WriteRaw(field_addr, &target, 8));
          break;
        }
        case RelocType::kAbs32: {
          if (target > UINT32_MAX) {
            return Status::OutOfRange(StrFormat("%s: abs32 reloc overflow", obj.name.c_str()));
          }
          const auto value = static_cast<uint32_t>(target);
          MV_RETURN_IF_ERROR(memory.WriteRaw(field_addr, &value, 4));
          break;
        }
        case RelocType::kRel32: {
          const int64_t rel =
              static_cast<int64_t>(target) - static_cast<int64_t>(field_addr + 4);
          if (rel > INT32_MAX || rel < INT32_MIN) {
            return Status::OutOfRange(StrFormat("%s: rel32 reloc overflow", obj.name.c_str()));
          }
          const auto value = static_cast<int32_t>(rel);
          MV_RETURN_IF_ERROR(memory.WriteRaw(field_addr, &value, 4));
          break;
        }
      }
    }
  }

  // --- 5. Final protections. ---
  // Drop the temporary blanket mapping first: anything outside a section,
  // the halt stub or the stack (notably the null page) must be unmapped.
  MV_RETURN_IF_ERROR(memory.Protect(0, stack_top, kPermNone));
  for (const auto& [name, placement] : image.sections) {
    if (placement.size == 0) {
      continue;
    }
    MV_RETURN_IF_ERROR(memory.Protect(placement.addr, placement.size, plan.perms.at(name)));
  }
  MV_RETURN_IF_ERROR(memory.Protect(halt_addr, 1, kPermRead | kPermExec));
  MV_RETURN_IF_ERROR(
      memory.Protect(stack_base, options.stack_size, kPermRead | kPermWrite));

  const SectionPlacement& text = image.sections[".text"];
  image.text_base = text.addr;
  image.text_size = text.size;
  vm->FlushAllIcache();
  return image;
}

void SetupCall(const Image& image, Vm* vm, uint64_t fn_addr,
               const std::vector<uint64_t>& args, int core_id) {
  Core& core = vm->core(core_id);
  core.halted = false;
  uint64_t sp = image.stack_top - 8 * static_cast<uint64_t>(1 + core_id) * 4096;
  sp &= ~UINT64_C(15);
  sp -= 8;
  uint64_t halt = image.halt_stub;
  (void)vm->memory().WriteRaw(sp, &halt, 8);
  core.regs[kRegSP] = sp;
  for (size_t i = 0; i < args.size() && i < kMaxRegArgs; ++i) {
    core.regs[i] = args[i];
  }
  core.pc = fn_addr;
  core.predictor.PushRet(halt);
}

}  // namespace mv

// mvir — the mid-level IR of the mvcc toolchain.
//
// Design notes relevant to multiverse:
//  * Virtual registers are single-assignment and block-local; all values that
//    cross basic blocks flow through named frame *slots* (like -O0 GCC
//    locals). This keeps the optimizer and register allocator simple while
//    still letting specialization collapse configuration-dependent control
//    flow: the specializer replaces kLoadGlobal of a configuration switch
//    with a constant, then constant folding + slot forwarding + CFG
//    simplification + DCE shrink the variant (paper §3).
//  * Reads and writes of globals are distinct opcodes (kLoadGlobal /
//    kStoreGlobal), so "replace each read of a switch with the constant value
//    and emit a warning if a switch is written" is a direct IR rewrite.
//  * Indirect calls record the multiverse function-pointer global they load
//    from (if any), so the code generator can emit call-site descriptors for
//    committed function-pointer switches (paper §4).
#ifndef MULTIVERSE_SRC_MVIR_IR_H_
#define MULTIVERSE_SRC_MVIR_IR_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/support/status.h"

namespace mv {

// ---------------------------------------------------------------------------
// Types

struct IrType {
  enum class Kind : uint8_t { kVoid, kInt, kPtr };

  Kind kind = Kind::kVoid;
  uint8_t bits = 0;       // 8/16/32/64 for kInt; 64 for kPtr
  bool is_signed = false;

  static IrType Void() { return {Kind::kVoid, 0, false}; }
  static IrType Int(uint8_t bits, bool is_signed) { return {Kind::kInt, bits, is_signed}; }
  static IrType I8() { return Int(8, true); }
  static IrType U8() { return Int(8, false); }
  static IrType I16() { return Int(16, true); }
  static IrType U16() { return Int(16, false); }
  static IrType I32() { return Int(32, true); }
  static IrType U32() { return Int(32, false); }
  static IrType I64() { return Int(64, true); }
  static IrType U64() { return Int(64, false); }
  static IrType Ptr() { return {Kind::kPtr, 64, false}; }

  bool is_void() const { return kind == Kind::kVoid; }
  bool is_int() const { return kind == Kind::kInt; }
  bool is_ptr() const { return kind == Kind::kPtr; }
  int byte_size() const { return bits / 8; }

  bool operator==(const IrType& o) const {
    return kind == o.kind && bits == o.bits && is_signed == o.is_signed;
  }
  bool operator!=(const IrType& o) const { return !(*this == o); }

  std::string ToString() const;
};

// ---------------------------------------------------------------------------
// Operands

inline constexpr uint32_t kNoVreg = UINT32_MAX;
inline constexpr uint32_t kNoIndex = UINT32_MAX;

struct Operand {
  enum class Kind : uint8_t { kNone, kVreg, kConst };

  Kind kind = Kind::kNone;
  IrType type;
  uint32_t vreg = kNoVreg;
  int64_t imm = 0;

  static Operand None() { return {}; }
  static Operand Vreg(uint32_t v, IrType t) {
    Operand op;
    op.kind = Kind::kVreg;
    op.vreg = v;
    op.type = t;
    return op;
  }
  static Operand Const(int64_t value, IrType t) {
    Operand op;
    op.kind = Kind::kConst;
    op.imm = value;
    op.type = t;
    return op;
  }

  bool is_vreg() const { return kind == Kind::kVreg; }
  bool is_const() const { return kind == Kind::kConst; }
  bool is_none() const { return kind == Kind::kNone; }

  std::string ToString() const;
};

// ---------------------------------------------------------------------------
// Instructions

enum class IrOp : uint8_t {
  // Slots (frame-allocated locals).
  kLoadSlot,     // result <- slot[slot_index]            (typed)
  kStoreSlot,    // slot[slot_index] <- args[0]
  kSlotAddr,     // result <- &slot[slot_index]           (ptr)

  // Globals.
  kLoadGlobal,   // result <- global[global_index]        (typed; specialization point)
  kStoreGlobal,  // global[global_index] <- args[0]
  kGlobalAddr,   // result <- &global[global_index]       (ptr)

  // Memory through pointers.
  kLoad,         // result <- *(T*)args[0]
  kStore,        // *(T*)args[0] <- args[1]               (type = value type)

  // Arithmetic / logic.
  kBin,          // result <- args[0] <bin> args[1]
  kCmp,          // result <- args[0] <pred> args[1]      (i32 0/1)
  kNot,          // result <- ~args[0]
  kNeg,          // result <- -args[0]
  kTrunc,        // result <- args[0] masked to type.bits
  kSext,         // result <- sign-extend args[0] from imm bits

  // Calls and function addresses.
  kCall,         // result <- callee(args...)             (direct, symbol in callee)
  kCallInd,      // result <- (*args[0])(args[1..])       (via_global optionally set)
  kCallVia,      // result <- (*global)(args...)          (named fn-ptr global; lowers
                 //   to a single patchable CALLM instruction, like x86 `call *mem`)
  kFuncAddr,     // result <- &callee                     (ptr; symbol in callee)

  // System intrinsics (map 1:1 to MVISA).
  kSti,
  kCli,
  kXchg,         // result <- atomic exchange(*(u32*)args[0], args[1])
  kPause,
  kFence,
  kRdtsc,        // result <- cycle counter
  kHypercall,    // hypercall imm
  kVmCall,       // result <- host upcall imm with args[0] in r0 (optional)
  kHlt,

  // Terminators.
  kBr,           // goto bb_then
  kCondBr,       // if args[0] goto bb_then else bb_else
  kRet,          // return args[0] (optional)
};

bool IrOpIsTerminator(IrOp op);
// True if the instruction has an effect other than producing its result
// (may not be removed by DCE even if the result is unused).
bool IrOpHasSideEffects(IrOp op);
const char* IrOpName(IrOp op);

enum class BinKind : uint8_t {
  kAdd, kSub, kMul, kSDiv, kUDiv, kSRem, kURem,
  kAnd, kOr, kXor, kShl, kLShr, kAShr,
};
const char* BinKindName(BinKind k);

enum class CmpPred : uint8_t {
  kEq, kNe, kSLt, kSLe, kSGt, kSGe, kULt, kULe, kUGt, kUGe,
};
const char* CmpPredName(CmpPred p);

struct Instr {
  IrOp op;
  uint32_t result = kNoVreg;     // defined vreg, or kNoVreg
  IrType type;                   // type of result (or stored value for stores)
  std::vector<Operand> args;

  BinKind bin = BinKind::kAdd;
  CmpPred pred = CmpPred::kEq;
  uint32_t slot = kNoIndex;      // kLoadSlot/kStoreSlot/kSlotAddr
  uint32_t global = kNoIndex;    // kLoadGlobal/kStoreGlobal/kGlobalAddr
  std::string callee;            // kCall
  uint32_t via_global = kNoIndex;  // kCallInd through a multiverse fn-ptr switch
  int64_t imm = 0;               // kSext from-bits; kHypercall/kVmCall code
  uint32_t bb_then = kNoIndex;   // kBr/kCondBr
  uint32_t bb_else = kNoIndex;   // kCondBr

  std::string ToString() const;
};

// ---------------------------------------------------------------------------
// Function bodies

struct SlotInfo {
  std::string name;
  IrType type;
  bool address_taken = false;
  bool is_param = false;
};

struct BasicBlock {
  uint32_t id = 0;
  std::vector<Instr> instrs;

  const Instr* terminator() const {
    return instrs.empty() || !IrOpIsTerminator(instrs.back().op) ? nullptr : &instrs.back();
  }
};

// A guard range over one configuration switch: the variant is usable when
// the switch value lies in [lo, hi] (paper §3: value ranges cover merged
// variants).
struct GuardRange {
  uint32_t global = kNoIndex;
  int64_t lo = 0;
  int64_t hi = 0;
};

// One selectable variant of a generic function (possibly shared by several
// guard records when merged variants do not form a contiguous box).
struct VariantRecord {
  std::string symbol;             // the variant function's symbol name
  std::vector<GuardRange> guards;
};

// Multiverse metadata attached to a function.
struct MvFunctionInfo {
  bool is_multiverse = false;
  // For generated variants: the binding this variant was specialized for.
  // Maps global index -> bound value. Empty for the generic function.
  std::map<uint32_t, int64_t> binding;
  // Name of the generic function this variant was cloned from (variants only).
  std::string generic_name;
  // On the generic function: all variant descriptors (paper Figure 2).
  std::vector<VariantRecord> variants;
  // Partial specialization (paper §7.1): when non-empty, only these switches
  // participate in the cross product; other referenced switches stay dynamic.
  std::vector<uint32_t> bind_only;
  bool is_variant() const { return !generic_name.empty(); }
};

struct Function {
  std::string name;
  IrType return_type = IrType::Void();
  std::vector<IrType> param_types;
  // Parameter i is stored into slot i on entry.
  std::vector<SlotInfo> slots;
  std::vector<BasicBlock> blocks;  // blocks[0] is the entry block
  uint32_t next_vreg = 0;
  bool is_extern = false;          // declaration only
  bool no_inline = false;          // multiverse generic functions are never inlined (§3)
  // Custom no-scratch-register calling convention: the callee saves/restores
  // a fixed register set (models the kernel's PV-Ops convention, §6.1).
  bool pvop_convention = false;
  MvFunctionInfo mv;

  uint32_t AddSlot(std::string name, IrType type, bool is_param = false) {
    slots.push_back({std::move(name), type, false, is_param});
    return static_cast<uint32_t>(slots.size() - 1);
  }
  uint32_t AddBlock() {
    BasicBlock bb;
    bb.id = static_cast<uint32_t>(blocks.size());
    blocks.push_back(std::move(bb));
    return blocks.back().id;
  }
  uint32_t NewVreg() { return next_vreg++; }
};

// ---------------------------------------------------------------------------
// Globals and modules

struct GlobalVar {
  std::string name;
  IrType type;                   // scalar element type (or Ptr for fn pointers)
  uint32_t count = 1;            // >1 for arrays
  std::vector<int64_t> init;     // element initializers (zero-filled if empty)
  std::string init_symbol;       // fn-ptr initializer: function name
  bool is_extern = false;
  bool is_const = false;         // placed in .rodata (string literals)

  // Multiverse attribute state (paper §2, §3).
  bool is_multiverse = false;
  std::vector<int64_t> domain;   // explicit domain; empty = default policy
  bool is_fnptr_switch = false;  // attributed function pointer (paper §4)

  bool is_array() const { return count > 1; }
  uint64_t byte_size() const { return static_cast<uint64_t>(type.byte_size()) * count; }
};

struct Module {
  std::string name;
  std::vector<GlobalVar> globals;
  std::vector<Function> functions;

  GlobalVar* FindGlobal(std::string_view gname);
  const GlobalVar* FindGlobal(std::string_view gname) const;
  uint32_t GlobalIndex(std::string_view gname) const;  // kNoIndex if absent
  Function* FindFunction(std::string_view fname);
  const Function* FindFunction(std::string_view fname) const;

  std::string ToString() const;
};

// Pretty-printers (used by tests and --dump-ir debugging).
std::string PrintFunction(const Function& fn, const Module& module);

// Structural well-formedness checks: blocks terminated exactly once at the
// end, vregs defined before use within their block, operand/slot/global
// indices in range, branch targets valid.
Status VerifyFunction(const Function& fn, const Module& module);
Status VerifyModule(const Module& module);

}  // namespace mv

#endif  // MULTIVERSE_SRC_MVIR_IR_H_

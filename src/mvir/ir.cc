#include "src/mvir/ir.h"

#include <set>

#include "src/support/str.h"

namespace mv {

std::string IrType::ToString() const {
  switch (kind) {
    case Kind::kVoid:
      return "void";
    case Kind::kPtr:
      return "ptr";
    case Kind::kInt:
      return StrFormat("%c%d", is_signed ? 'i' : 'u', bits);
  }
  return "?";
}

std::string Operand::ToString() const {
  switch (kind) {
    case Kind::kNone:
      return "<none>";
    case Kind::kVreg:
      return StrFormat("%%%u:%s", vreg, type.ToString().c_str());
    case Kind::kConst:
      return StrFormat("%lld:%s", (long long)imm, type.ToString().c_str());
  }
  return "?";
}

bool IrOpIsTerminator(IrOp op) {
  return op == IrOp::kBr || op == IrOp::kCondBr || op == IrOp::kRet;
}

bool IrOpHasSideEffects(IrOp op) {
  switch (op) {
    case IrOp::kStoreSlot:
    case IrOp::kStoreGlobal:
    case IrOp::kStore:
    case IrOp::kCall:
    case IrOp::kCallInd:
    case IrOp::kCallVia:
    case IrOp::kSti:
    case IrOp::kCli:
    case IrOp::kXchg:
    case IrOp::kPause:
    case IrOp::kFence:
    case IrOp::kRdtsc:  // reads the time-stamp counter; ordering matters
    case IrOp::kHypercall:
    case IrOp::kVmCall:
    case IrOp::kHlt:
    case IrOp::kBr:
    case IrOp::kCondBr:
    case IrOp::kRet:
      return true;
    default:
      return false;
  }
}

const char* IrOpName(IrOp op) {
  switch (op) {
    case IrOp::kLoadSlot: return "loadslot";
    case IrOp::kStoreSlot: return "storeslot";
    case IrOp::kSlotAddr: return "slotaddr";
    case IrOp::kLoadGlobal: return "loadglobal";
    case IrOp::kStoreGlobal: return "storeglobal";
    case IrOp::kGlobalAddr: return "globaladdr";
    case IrOp::kLoad: return "load";
    case IrOp::kStore: return "store";
    case IrOp::kBin: return "bin";
    case IrOp::kCmp: return "cmp";
    case IrOp::kNot: return "not";
    case IrOp::kNeg: return "neg";
    case IrOp::kTrunc: return "trunc";
    case IrOp::kSext: return "sext";
    case IrOp::kCall: return "call";
    case IrOp::kCallInd: return "callind";
    case IrOp::kCallVia: return "callvia";
    case IrOp::kFuncAddr: return "funcaddr";
    case IrOp::kSti: return "sti";
    case IrOp::kCli: return "cli";
    case IrOp::kXchg: return "xchg";
    case IrOp::kPause: return "pause";
    case IrOp::kFence: return "fence";
    case IrOp::kRdtsc: return "rdtsc";
    case IrOp::kHypercall: return "hypercall";
    case IrOp::kVmCall: return "vmcall";
    case IrOp::kHlt: return "hlt";
    case IrOp::kBr: return "br";
    case IrOp::kCondBr: return "condbr";
    case IrOp::kRet: return "ret";
  }
  return "?";
}

const char* BinKindName(BinKind k) {
  switch (k) {
    case BinKind::kAdd: return "add";
    case BinKind::kSub: return "sub";
    case BinKind::kMul: return "mul";
    case BinKind::kSDiv: return "sdiv";
    case BinKind::kUDiv: return "udiv";
    case BinKind::kSRem: return "srem";
    case BinKind::kURem: return "urem";
    case BinKind::kAnd: return "and";
    case BinKind::kOr: return "or";
    case BinKind::kXor: return "xor";
    case BinKind::kShl: return "shl";
    case BinKind::kLShr: return "lshr";
    case BinKind::kAShr: return "ashr";
  }
  return "?";
}

const char* CmpPredName(CmpPred p) {
  switch (p) {
    case CmpPred::kEq: return "eq";
    case CmpPred::kNe: return "ne";
    case CmpPred::kSLt: return "slt";
    case CmpPred::kSLe: return "sle";
    case CmpPred::kSGt: return "sgt";
    case CmpPred::kSGe: return "sge";
    case CmpPred::kULt: return "ult";
    case CmpPred::kULe: return "ule";
    case CmpPred::kUGt: return "ugt";
    case CmpPred::kUGe: return "uge";
  }
  return "?";
}

std::string Instr::ToString() const {
  std::string out;
  if (result != kNoVreg) {
    out += StrFormat("%%%u = ", result);
  }
  switch (op) {
    case IrOp::kBin:
      out += BinKindName(bin);
      break;
    case IrOp::kCmp:
      out += StrFormat("cmp.%s", CmpPredName(pred));
      break;
    default:
      out += IrOpName(op);
      break;
  }
  if (slot != kNoIndex) {
    out += StrFormat(" slot%u", slot);
  }
  if (global != kNoIndex) {
    out += StrFormat(" @g%u", global);
  }
  if (!callee.empty()) {
    out += " @";
    out += callee;
  }
  if (via_global != kNoIndex) {
    out += StrFormat(" via@g%u", via_global);
  }
  for (const Operand& arg : args) {
    out += " ";
    out += arg.ToString();
  }
  if (op == IrOp::kSext || op == IrOp::kHypercall || op == IrOp::kVmCall) {
    out += StrFormat(" #%lld", (long long)imm);
  }
  if (op == IrOp::kBr) {
    out += StrFormat(" bb%u", bb_then);
  }
  if (op == IrOp::kCondBr) {
    out += StrFormat(" bb%u bb%u", bb_then, bb_else);
  }
  if (op == IrOp::kTrunc || (result != kNoVreg && op != IrOp::kBin && op != IrOp::kCmp)) {
    out += StrFormat(" :%s", type.ToString().c_str());
  }
  return out;
}

GlobalVar* Module::FindGlobal(std::string_view gname) {
  for (GlobalVar& g : globals) {
    if (g.name == gname) {
      return &g;
    }
  }
  return nullptr;
}

const GlobalVar* Module::FindGlobal(std::string_view gname) const {
  return const_cast<Module*>(this)->FindGlobal(gname);
}

uint32_t Module::GlobalIndex(std::string_view gname) const {
  for (size_t i = 0; i < globals.size(); ++i) {
    if (globals[i].name == gname) {
      return static_cast<uint32_t>(i);
    }
  }
  return kNoIndex;
}

Function* Module::FindFunction(std::string_view fname) {
  for (Function& f : functions) {
    if (f.name == fname) {
      return &f;
    }
  }
  return nullptr;
}

const Function* Module::FindFunction(std::string_view fname) const {
  return const_cast<Module*>(this)->FindFunction(fname);
}

std::string PrintFunction(const Function& fn, const Module& module) {
  (void)module;
  std::string out = StrFormat("func %s(", fn.name.c_str());
  for (size_t i = 0; i < fn.param_types.size(); ++i) {
    if (i != 0) {
      out += ", ";
    }
    out += fn.param_types[i].ToString();
  }
  out += StrFormat(") -> %s", fn.return_type.ToString().c_str());
  if (fn.mv.is_multiverse) {
    out += " [multiverse]";
  }
  if (fn.mv.is_variant()) {
    out += StrFormat(" [variant of %s:", fn.mv.generic_name.c_str());
    for (const auto& [g, v] : fn.mv.binding) {
      out += StrFormat(" g%u=%lld", g, (long long)v);
    }
    out += "]";
  }
  if (fn.is_extern) {
    out += " extern;\n";
    return out;
  }
  out += " {\n";
  for (size_t i = 0; i < fn.slots.size(); ++i) {
    out += StrFormat("  slot%zu: %s %s%s\n", i, fn.slots[i].type.ToString().c_str(),
                     fn.slots[i].name.c_str(), fn.slots[i].is_param ? " (param)" : "");
  }
  for (const BasicBlock& bb : fn.blocks) {
    out += StrFormat("bb%u:\n", bb.id);
    for (const Instr& instr : bb.instrs) {
      out += "  ";
      out += instr.ToString();
      out += "\n";
    }
  }
  out += "}\n";
  return out;
}

std::string Module::ToString() const {
  std::string out = StrFormat("module %s\n", name.c_str());
  for (size_t i = 0; i < globals.size(); ++i) {
    const GlobalVar& g = globals[i];
    out += StrFormat("  global @g%zu %s %s", i, g.name.c_str(), g.type.ToString().c_str());
    if (g.is_array()) {
      out += StrFormat("[%u]", g.count);
    }
    if (g.is_multiverse) {
      out += " [multiverse";
      if (!g.domain.empty()) {
        out += " domain={";
        for (size_t k = 0; k < g.domain.size(); ++k) {
          out += StrFormat("%s%lld", k == 0 ? "" : ",", (long long)g.domain[k]);
        }
        out += "}";
      }
      out += "]";
    }
    if (g.is_extern) {
      out += " extern";
    }
    out += "\n";
  }
  for (const Function& fn : functions) {
    out += PrintFunction(fn, *this);
  }
  return out;
}

namespace {

Status VerifyInstr(const Function& fn, const Module& module, const BasicBlock& bb,
                   const Instr& instr, std::set<uint32_t>* defined) {
  auto err = [&](const std::string& msg) {
    return Status::Internal(StrFormat("%s: bb%u: `%s`: %s", fn.name.c_str(), bb.id,
                                      instr.ToString().c_str(), msg.c_str()));
  };
  for (const Operand& arg : instr.args) {
    if (arg.is_vreg() && defined->count(arg.vreg) == 0) {
      return err(StrFormat("use of %%%u before block-local definition", arg.vreg));
    }
  }
  if (instr.result != kNoVreg) {
    if (instr.result >= fn.next_vreg) {
      return err("result vreg out of range");
    }
    if (!defined->insert(instr.result).second) {
      return err("vreg redefined");
    }
  }
  if (instr.slot != kNoIndex && instr.slot >= fn.slots.size()) {
    return err("slot index out of range");
  }
  if (instr.global != kNoIndex && instr.global >= module.globals.size()) {
    return err("global index out of range");
  }
  if (instr.op == IrOp::kBr || instr.op == IrOp::kCondBr) {
    if (instr.bb_then >= fn.blocks.size()) {
      return err("branch target out of range");
    }
    if (instr.op == IrOp::kCondBr && instr.bb_else >= fn.blocks.size()) {
      return err("branch target out of range");
    }
  }
  if ((instr.op == IrOp::kCall || instr.op == IrOp::kFuncAddr) &&
      module.FindFunction(instr.callee) == nullptr) {
    return err(StrFormat("call to unknown function '%s'", instr.callee.c_str()));
  }
  return Status::Ok();
}

}  // namespace

Status VerifyFunction(const Function& fn, const Module& module) {
  if (fn.is_extern) {
    return Status::Ok();
  }
  if (fn.blocks.empty()) {
    return Status::Internal(StrFormat("%s: function has no blocks", fn.name.c_str()));
  }
  for (const BasicBlock& bb : fn.blocks) {
    if (bb.instrs.empty() || !IrOpIsTerminator(bb.instrs.back().op)) {
      return Status::Internal(
          StrFormat("%s: bb%u is not terminated", fn.name.c_str(), bb.id));
    }
    std::set<uint32_t> defined;
    for (size_t i = 0; i < bb.instrs.size(); ++i) {
      if (i + 1 < bb.instrs.size() && IrOpIsTerminator(bb.instrs[i].op)) {
        return Status::Internal(
            StrFormat("%s: bb%u has a terminator in the middle", fn.name.c_str(), bb.id));
      }
      MV_RETURN_IF_ERROR(VerifyInstr(fn, module, bb, bb.instrs[i], &defined));
    }
  }
  return Status::Ok();
}

Status VerifyModule(const Module& module) {
  for (const Function& fn : module.functions) {
    MV_RETURN_IF_ERROR(VerifyFunction(fn, module));
  }
  return Status::Ok();
}

}  // namespace mv

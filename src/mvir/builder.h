// Convenience builder for constructing mvir, used by the mvc lowering pass
// and by IR-level unit tests.
#ifndef MULTIVERSE_SRC_MVIR_BUILDER_H_
#define MULTIVERSE_SRC_MVIR_BUILDER_H_

#include <string>
#include <utility>

#include "src/mvir/ir.h"

namespace mv {

class IrBuilder {
 public:
  explicit IrBuilder(Function* fn) : fn_(fn) {}

  // Positions the builder at the end of block `bb`.
  void SetBlock(uint32_t bb) { bb_ = bb; }
  uint32_t current_block() const { return bb_; }

  // True if the current block already ends in a terminator (e.g. after a
  // `return` statement); further appends would be unreachable.
  bool Terminated() const {
    const BasicBlock& block = fn_->blocks[bb_];
    return block.terminator() != nullptr;
  }

  Operand LoadSlot(uint32_t slot) {
    Instr instr;
    instr.op = IrOp::kLoadSlot;
    instr.slot = slot;
    instr.type = fn_->slots[slot].type;
    return AppendValue(std::move(instr));
  }
  void StoreSlot(uint32_t slot, Operand value) {
    Instr instr;
    instr.op = IrOp::kStoreSlot;
    instr.slot = slot;
    instr.type = fn_->slots[slot].type;
    instr.args = {value};
    Append(std::move(instr));
  }
  Operand SlotAddr(uint32_t slot) {
    Instr instr;
    instr.op = IrOp::kSlotAddr;
    instr.slot = slot;
    instr.type = IrType::Ptr();
    return AppendValue(std::move(instr));
  }

  Operand LoadGlobal(uint32_t global, IrType type) {
    Instr instr;
    instr.op = IrOp::kLoadGlobal;
    instr.global = global;
    instr.type = type;
    return AppendValue(std::move(instr));
  }
  void StoreGlobal(uint32_t global, Operand value, IrType type) {
    Instr instr;
    instr.op = IrOp::kStoreGlobal;
    instr.global = global;
    instr.type = type;
    instr.args = {value};
    Append(std::move(instr));
  }
  Operand GlobalAddr(uint32_t global) {
    Instr instr;
    instr.op = IrOp::kGlobalAddr;
    instr.global = global;
    instr.type = IrType::Ptr();
    return AppendValue(std::move(instr));
  }

  Operand Load(Operand ptr, IrType type) {
    Instr instr;
    instr.op = IrOp::kLoad;
    instr.type = type;
    instr.args = {ptr};
    return AppendValue(std::move(instr));
  }
  void Store(Operand ptr, Operand value, IrType type) {
    Instr instr;
    instr.op = IrOp::kStore;
    instr.type = type;
    instr.args = {ptr, value};
    Append(std::move(instr));
  }

  Operand Bin(BinKind kind, Operand lhs, Operand rhs, IrType type) {
    Instr instr;
    instr.op = IrOp::kBin;
    instr.bin = kind;
    instr.type = type;
    instr.args = {lhs, rhs};
    return AppendValue(std::move(instr));
  }
  Operand Cmp(CmpPred pred, Operand lhs, Operand rhs) {
    Instr instr;
    instr.op = IrOp::kCmp;
    instr.pred = pred;
    instr.type = IrType::I32();
    instr.args = {lhs, rhs};
    return AppendValue(std::move(instr));
  }
  Operand Not(Operand value, IrType type) {
    Instr instr;
    instr.op = IrOp::kNot;
    instr.type = type;
    instr.args = {value};
    return AppendValue(std::move(instr));
  }
  Operand Neg(Operand value, IrType type) {
    Instr instr;
    instr.op = IrOp::kNeg;
    instr.type = type;
    instr.args = {value};
    return AppendValue(std::move(instr));
  }
  Operand Trunc(Operand value, IrType type) {
    Instr instr;
    instr.op = IrOp::kTrunc;
    instr.type = type;
    instr.args = {value};
    return AppendValue(std::move(instr));
  }
  Operand Sext(Operand value, int from_bits, IrType type) {
    Instr instr;
    instr.op = IrOp::kSext;
    instr.imm = from_bits;
    instr.type = type;
    instr.args = {value};
    return AppendValue(std::move(instr));
  }

  Operand Call(std::string callee, std::vector<Operand> args, IrType ret) {
    Instr instr;
    instr.op = IrOp::kCall;
    instr.callee = std::move(callee);
    instr.type = ret;
    instr.args = std::move(args);
    if (ret.is_void()) {
      Append(std::move(instr));
      return Operand::None();
    }
    return AppendValue(std::move(instr));
  }
  Operand CallVia(uint32_t global, std::vector<Operand> args, IrType ret) {
    Instr instr;
    instr.op = IrOp::kCallVia;
    instr.global = global;
    instr.type = ret;
    instr.args = std::move(args);
    if (ret.is_void()) {
      Append(std::move(instr));
      return Operand::None();
    }
    return AppendValue(std::move(instr));
  }
  Operand FuncAddr(std::string callee) {
    Instr instr;
    instr.op = IrOp::kFuncAddr;
    instr.callee = std::move(callee);
    instr.type = IrType::Ptr();
    return AppendValue(std::move(instr));
  }
  Operand CallInd(Operand target, std::vector<Operand> args, IrType ret,
                  uint32_t via_global = kNoIndex) {
    Instr instr;
    instr.op = IrOp::kCallInd;
    instr.type = ret;
    instr.args.push_back(target);
    for (Operand& a : args) {
      instr.args.push_back(a);
    }
    instr.via_global = via_global;
    if (ret.is_void()) {
      Append(std::move(instr));
      return Operand::None();
    }
    return AppendValue(std::move(instr));
  }

  void Sti() { AppendSimple(IrOp::kSti); }
  void Cli() { AppendSimple(IrOp::kCli); }
  void Pause() { AppendSimple(IrOp::kPause); }
  void Fence() { AppendSimple(IrOp::kFence); }
  void Hlt() { AppendSimple(IrOp::kHlt); }
  Operand Xchg(Operand ptr, Operand value) {
    Instr instr;
    instr.op = IrOp::kXchg;
    instr.type = IrType::U32();
    instr.args = {ptr, value};
    return AppendValue(std::move(instr));
  }
  Operand Rdtsc() {
    Instr instr;
    instr.op = IrOp::kRdtsc;
    instr.type = IrType::U64();
    return AppendValue(std::move(instr));
  }
  void Hypercall(int64_t code) {
    Instr instr;
    instr.op = IrOp::kHypercall;
    instr.imm = code;
    Append(std::move(instr));
  }
  Operand VmCall(int64_t code, Operand arg) {
    Instr instr;
    instr.op = IrOp::kVmCall;
    instr.imm = code;
    instr.type = IrType::I64();
    if (!arg.is_none()) {
      instr.args = {arg};
    }
    return AppendValue(std::move(instr));
  }

  void Br(uint32_t target) {
    Instr instr;
    instr.op = IrOp::kBr;
    instr.bb_then = target;
    Append(std::move(instr));
  }
  void CondBr(Operand cond, uint32_t then_bb, uint32_t else_bb) {
    Instr instr;
    instr.op = IrOp::kCondBr;
    instr.args = {cond};
    instr.bb_then = then_bb;
    instr.bb_else = else_bb;
    Append(std::move(instr));
  }
  void Ret() {
    Instr instr;
    instr.op = IrOp::kRet;
    Append(std::move(instr));
  }
  void Ret(Operand value) {
    Instr instr;
    instr.op = IrOp::kRet;
    instr.args = {value};
    instr.type = value.type;
    Append(std::move(instr));
  }

  Function* function() { return fn_; }

 private:
  void Append(Instr instr) {
    if (!Terminated()) {
      fn_->blocks[bb_].instrs.push_back(std::move(instr));
    }
  }
  Operand AppendValue(Instr instr) {
    instr.result = fn_->NewVreg();
    Operand result = Operand::Vreg(instr.result, instr.type);
    Append(std::move(instr));
    return result;
  }
  void AppendSimple(IrOp op) {
    Instr instr;
    instr.op = op;
    Append(std::move(instr));
  }

  Function* fn_;
  uint32_t bb_ = 0;
};

}  // namespace mv

#endif  // MULTIVERSE_SRC_MVIR_BUILDER_H_

// Optimizer passes for mvir.
//
// The multiverse specializer (src/core/specializer.h) substitutes constant
// values for configuration-switch reads and then relies on this pipeline to
// specialize the clone — mirroring the paper's use of GCC's constant
// propagation, constant folding and dead-code elimination (§3). Variants that
// become structurally equal after optimization are detected via
// CanonicalizeFunction/FunctionsEquivalent and merged by the specializer.
#ifndef MULTIVERSE_SRC_OPT_PASSES_H_
#define MULTIVERSE_SRC_OPT_PASSES_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "src/mvir/ir.h"

namespace mv {

// Normalizes a 64-bit raw value to the representation the VM keeps in a
// register for a value of type `type` (sign- or zero-extended from its width).
int64_t NormalizeValue(int64_t value, IrType type);

// Constant evaluation used by the folding pass and by tests. Returns nullopt
// for division by zero (left to trap at run time).
std::optional<int64_t> EvalBin(BinKind kind, int64_t lhs, int64_t rhs, IrType type);
int64_t EvalCmp(CmpPred pred, int64_t lhs, int64_t rhs);

// --- Individual passes. Each returns true if it changed the function. ---

// Replaces reads of the given globals with constants; the heart of variant
// generation. Appends a warning string per write to a bound switch
// (paper §3: "emit a warning if a switch is written").
bool SubstituteGlobalReads(Function& fn, const std::map<uint32_t, int64_t>& binding,
                           std::vector<std::string>* warnings);

// Block-local constant folding and copy propagation; folds kCondBr with a
// constant condition into kBr.
bool FoldConstants(Function& fn);

// Store-to-load forwarding for frame slots within a block, plus whole-
// function promotion of single-store constant slots whose address is never
// taken.
bool ForwardSlots(Function& fn);

// Removes unreachable blocks, threads trivial jump-only blocks, merges
// single-predecessor blocks into their unique predecessor.
bool SimplifyCfg(Function& fn);

// Removes instructions whose results are unused and which have no side
// effects; removes stores to slots that are never read and never addressed.
bool EliminateDeadCode(Function& fn);

// Runs the full pipeline to a fixpoint (bounded). Returns true if anything
// changed.
bool RunPipeline(Function& fn, const Module& module);

// --- Structural equality (variant merging, paper §3) ---

// Canonical serialization: blocks in reverse-postorder, vregs and slots
// renumbered in first-use order. Two functions with equal canonical forms
// have identical behaviour and identical generated code shape.
std::string CanonicalizeFunction(const Function& fn);

bool FunctionsEquivalent(const Function& a, const Function& b);

}  // namespace mv

#endif  // MULTIVERSE_SRC_OPT_PASSES_H_

#include <unordered_map>
#include <vector>

#include "src/opt/passes.h"
#include "src/support/str.h"

namespace mv {

namespace {

// Remaps ids (vregs, slots, blocks) to dense indices in first-encounter order
// so that two functions that differ only in numbering canonicalize equally.
class IdMap {
 public:
  uint32_t Get(uint32_t id) {
    auto [it, inserted] = map_.emplace(id, next_);
    if (inserted) {
      ++next_;
    }
    return it->second;
  }

 private:
  std::unordered_map<uint32_t, uint32_t> map_;
  uint32_t next_ = 0;
};

}  // namespace

std::string CanonicalizeFunction(const Function& fn) {
  // Reverse-postorder over reachable blocks. For our structured CFGs a
  // depth-first preorder with successors visited then-first is stable and
  // sufficient for canonical naming.
  std::vector<uint32_t> order;
  std::vector<bool> visited(fn.blocks.size(), false);
  std::vector<uint32_t> stack = {0};
  while (!stack.empty()) {
    const uint32_t id = stack.back();
    stack.pop_back();
    if (id >= fn.blocks.size() || visited[id]) {
      continue;
    }
    visited[id] = true;
    order.push_back(id);
    const Instr* term = fn.blocks[id].terminator();
    if (term != nullptr) {
      if (term->op == IrOp::kCondBr) {
        stack.push_back(term->bb_else);
        stack.push_back(term->bb_then);
      } else if (term->op == IrOp::kBr) {
        stack.push_back(term->bb_then);
      }
    }
  }

  IdMap block_map;
  for (uint32_t id : order) {
    block_map.Get(id);
  }
  IdMap vreg_map;
  IdMap slot_map;

  std::string out;
  out += StrFormat("sig(%s|", fn.return_type.ToString().c_str());
  for (const IrType& t : fn.param_types) {
    out += t.ToString();
    out += ",";
  }
  out += ")\n";

  for (uint32_t id : order) {
    const BasicBlock& bb = fn.blocks[id];
    out += StrFormat("B%u:\n", block_map.Get(id));
    for (const Instr& instr : bb.instrs) {
      out += " ";
      out += IrOpName(instr.op);
      if (instr.op == IrOp::kBin) {
        out += ".";
        out += BinKindName(instr.bin);
      }
      if (instr.op == IrOp::kCmp) {
        out += ".";
        out += CmpPredName(instr.pred);
      }
      if (instr.slot != kNoIndex) {
        out += StrFormat(" s%u", slot_map.Get(instr.slot));
        // Slot identity includes its type (frame layout).
        out += ":";
        out += fn.slots[instr.slot].type.ToString();
      }
      if (instr.global != kNoIndex) {
        out += StrFormat(" g%u", instr.global);
      }
      if (!instr.callee.empty()) {
        out += " @";
        out += instr.callee;
      }
      if (instr.via_global != kNoIndex) {
        out += StrFormat(" v%u", instr.via_global);
      }
      for (const Operand& arg : instr.args) {
        if (arg.is_vreg()) {
          out += StrFormat(" %%%u:%s", vreg_map.Get(arg.vreg), arg.type.ToString().c_str());
        } else if (arg.is_const()) {
          out += StrFormat(" $%lld:%s", (long long)arg.imm, arg.type.ToString().c_str());
        }
      }
      if (instr.result != kNoVreg) {
        out += StrFormat(" ->%%%u", vreg_map.Get(instr.result));
      }
      out += StrFormat(" :%s", instr.type.ToString().c_str());
      if (instr.op == IrOp::kSext || instr.op == IrOp::kHypercall ||
          instr.op == IrOp::kVmCall) {
        out += StrFormat(" #%lld", (long long)instr.imm);
      }
      if (instr.op == IrOp::kBr) {
        out += StrFormat(" B%u", block_map.Get(instr.bb_then));
      } else if (instr.op == IrOp::kCondBr) {
        out += StrFormat(" B%u B%u", block_map.Get(instr.bb_then),
                         block_map.Get(instr.bb_else));
      }
      out += "\n";
    }
  }
  return out;
}

bool FunctionsEquivalent(const Function& a, const Function& b) {
  return CanonicalizeFunction(a) == CanonicalizeFunction(b);
}

}  // namespace mv

#include <unordered_map>
#include <vector>

#include "src/opt/passes.h"

namespace mv {

namespace {

// Retargets a block id through chains of trivial forwarding blocks
// (blocks whose only instruction is an unconditional branch).
uint32_t ResolveForward(const Function& fn, uint32_t bb) {
  uint32_t current = bb;
  for (int hops = 0; hops < 64; ++hops) {  // bounded: cycles of empty blocks
    const BasicBlock& block = fn.blocks[current];
    if (block.instrs.size() == 1 && block.instrs[0].op == IrOp::kBr &&
        block.instrs[0].bb_then != current) {
      current = block.instrs[0].bb_then;
    } else {
      return current;
    }
  }
  return current;
}

}  // namespace

bool SimplifyCfg(Function& fn) {
  if (fn.blocks.empty()) {
    return false;
  }
  bool changed = false;

  // 1. Thread jumps through empty forwarding blocks.
  for (BasicBlock& bb : fn.blocks) {
    for (Instr& instr : bb.instrs) {
      if (instr.op == IrOp::kBr) {
        const uint32_t target = ResolveForward(fn, instr.bb_then);
        if (target != instr.bb_then) {
          instr.bb_then = target;
          changed = true;
        }
      } else if (instr.op == IrOp::kCondBr) {
        const uint32_t then_t = ResolveForward(fn, instr.bb_then);
        const uint32_t else_t = ResolveForward(fn, instr.bb_else);
        if (then_t != instr.bb_then || else_t != instr.bb_else) {
          instr.bb_then = then_t;
          instr.bb_else = else_t;
          changed = true;
        }
        // Both arms equal: degrade to an unconditional branch. The condition
        // value, if otherwise unused, dies in DCE.
        if (instr.bb_then == instr.bb_else) {
          Instr br;
          br.op = IrOp::kBr;
          br.bb_then = instr.bb_then;
          instr = std::move(br);
          changed = true;
        }
      }
    }
  }

  // 2. Compute reachability and predecessor counts.
  std::vector<bool> reachable(fn.blocks.size(), false);
  std::vector<uint32_t> worklist = {0};
  reachable[0] = true;
  while (!worklist.empty()) {
    const uint32_t id = worklist.back();
    worklist.pop_back();
    const Instr* term = fn.blocks[id].terminator();
    if (term == nullptr) {
      continue;
    }
    if (term->op == IrOp::kBr || term->op == IrOp::kCondBr) {
      for (uint32_t succ : {term->bb_then, term->bb_else}) {
        if (succ != kNoIndex && !reachable[succ]) {
          reachable[succ] = true;
          worklist.push_back(succ);
        }
      }
    }
  }

  std::vector<int> pred_count(fn.blocks.size(), 0);
  for (size_t i = 0; i < fn.blocks.size(); ++i) {
    if (!reachable[i]) {
      continue;
    }
    const Instr* term = fn.blocks[i].terminator();
    if (term != nullptr && (term->op == IrOp::kBr || term->op == IrOp::kCondBr)) {
      ++pred_count[term->bb_then];
      if (term->op == IrOp::kCondBr) {
        ++pred_count[term->bb_else];
      }
    }
  }

  // 3. Merge single-predecessor blocks into predecessors that end in an
  // unconditional branch to them.
  for (size_t i = 0; i < fn.blocks.size(); ++i) {
    if (!reachable[i]) {
      continue;
    }
    BasicBlock& bb = fn.blocks[i];
    while (true) {
      const Instr* term = bb.terminator();
      if (term == nullptr || term->op != IrOp::kBr) {
        break;
      }
      const uint32_t succ = term->bb_then;
      if (succ == bb.id || pred_count[succ] != 1 || succ == 0) {
        break;
      }
      BasicBlock& next = fn.blocks[succ];
      bb.instrs.pop_back();  // drop the br
      for (Instr& instr : next.instrs) {
        bb.instrs.push_back(std::move(instr));
      }
      next.instrs.clear();
      reachable[succ] = false;
      changed = true;
      // Continue merging through the new terminator.
    }
  }

  // 4. Drop unreachable blocks and renumber.
  bool any_dead = false;
  for (size_t i = 0; i < fn.blocks.size(); ++i) {
    if (!reachable[i]) {
      any_dead = true;
      break;
    }
  }
  if (any_dead) {
    std::unordered_map<uint32_t, uint32_t> remap;
    std::vector<BasicBlock> kept;
    kept.reserve(fn.blocks.size());
    for (size_t i = 0; i < fn.blocks.size(); ++i) {
      if (reachable[i]) {
        remap[static_cast<uint32_t>(i)] = static_cast<uint32_t>(kept.size());
        kept.push_back(std::move(fn.blocks[i]));
      }
    }
    for (size_t i = 0; i < kept.size(); ++i) {
      kept[i].id = static_cast<uint32_t>(i);
      for (Instr& instr : kept[i].instrs) {
        if (instr.op == IrOp::kBr || instr.op == IrOp::kCondBr) {
          instr.bb_then = remap.at(instr.bb_then);
          if (instr.op == IrOp::kCondBr) {
            instr.bb_else = remap.at(instr.bb_else);
          }
        }
      }
    }
    fn.blocks = std::move(kept);
    changed = true;
  }

  return changed;
}

bool RunPipeline(Function& fn, const Module& module) {
  (void)module;
  if (fn.is_extern) {
    return false;
  }
  bool ever_changed = false;
  for (int round = 0; round < 10; ++round) {
    bool changed = false;
    changed |= FoldConstants(fn);
    changed |= ForwardSlots(fn);
    changed |= FoldConstants(fn);
    changed |= SimplifyCfg(fn);
    changed |= EliminateDeadCode(fn);
    if (!changed) {
      break;
    }
    ever_changed = true;
  }
  return ever_changed;
}

}  // namespace mv

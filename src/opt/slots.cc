#include <unordered_map>
#include <vector>

#include "src/opt/passes.h"

namespace mv {

namespace {

// True if the instruction can invalidate forwarded slot values: anything that
// may write memory a slot address could have escaped into.
bool MayClobberAddressedSlots(const Instr& instr) {
  switch (instr.op) {
    case IrOp::kStore:
    case IrOp::kCall:
    case IrOp::kCallInd:
    case IrOp::kXchg:
    case IrOp::kVmCall:
      return true;
    default:
      return false;
  }
}

}  // namespace

bool ForwardSlots(Function& fn) {
  bool changed = false;

  // Recompute address_taken flags (clones inherit the generic's flags; DCE
  // may have removed the kSlotAddr).
  for (SlotInfo& slot : fn.slots) {
    slot.address_taken = false;
  }
  for (const BasicBlock& bb : fn.blocks) {
    for (const Instr& instr : bb.instrs) {
      if (instr.op == IrOp::kSlotAddr) {
        fn.slots[instr.slot].address_taken = true;
      }
    }
  }

  // --- Block-local store-to-load forwarding. ---
  for (BasicBlock& bb : fn.blocks) {
    // slot -> forwarded operand (constant or vreg defined in this block).
    std::unordered_map<uint32_t, Operand> forwarded;
    // vreg -> replacement operand (from forwarded loads).
    std::unordered_map<uint32_t, Operand> replace;
    for (Instr& instr : bb.instrs) {
      for (Operand& arg : instr.args) {
        if (arg.is_vreg()) {
          auto it = replace.find(arg.vreg);
          if (it != replace.end()) {
            // Preserve the use-site type: a forwarded value was stored with
            // the slot's type, which the load would have produced too.
            Operand repl = it->second;
            repl.type = arg.type;
            arg = repl;
            changed = true;
          }
        }
      }
      switch (instr.op) {
        case IrOp::kStoreSlot:
          if (!fn.slots[instr.slot].address_taken) {
            forwarded[instr.slot] = instr.args[0];
          }
          break;
        case IrOp::kLoadSlot: {
          auto it = forwarded.find(instr.slot);
          if (it != forwarded.end()) {
            replace[instr.result] = it->second;
          } else if (!fn.slots[instr.slot].address_taken) {
            // The load itself becomes the forwarded value for later loads.
            forwarded[instr.slot] = Operand::Vreg(instr.result, instr.type);
          }
          break;
        }
        default:
          if (MayClobberAddressedSlots(instr)) {
            // Conservatively drop forwarding for addressed slots only; the
            // map holds only non-addressed slots, which cannot be clobbered
            // through pointers, so nothing to do. Calls also cannot touch
            // them (slots are function-private).
          }
          break;
      }
    }
  }

  // --- Whole-function single-store constant promotion. ---
  // A non-addressed, non-parameter slot with exactly one store, located in
  // the entry block before any entry-block load, whose stored value is a
  // constant: every load anywhere yields that constant.
  const size_t num_slots = fn.slots.size();
  std::vector<int> store_count(num_slots, 0);
  std::vector<int64_t> store_value(num_slots, 0);
  std::vector<bool> store_is_const(num_slots, false);
  std::vector<bool> store_in_entry(num_slots, false);
  std::vector<bool> load_before_store_in_entry(num_slots, false);

  for (const BasicBlock& bb : fn.blocks) {
    std::vector<bool> stored_here(num_slots, false);
    for (const Instr& instr : bb.instrs) {
      if (instr.op == IrOp::kStoreSlot) {
        const uint32_t s = instr.slot;
        ++store_count[s];
        store_is_const[s] = instr.args[0].is_const();
        store_value[s] = instr.args[0].is_const() ? instr.args[0].imm : 0;
        store_in_entry[s] = bb.id == 0;
        stored_here[s] = true;
      } else if (instr.op == IrOp::kLoadSlot && bb.id == 0 && !stored_here[instr.slot]) {
        load_before_store_in_entry[instr.slot] = true;
      }
    }
  }

  std::vector<bool> promotable(num_slots, false);
  bool any_promotable = false;
  for (size_t s = 0; s < num_slots; ++s) {
    if (!fn.slots[s].address_taken && !fn.slots[s].is_param && store_count[s] == 1 &&
        store_is_const[s] && store_in_entry[s] && !load_before_store_in_entry[s]) {
      promotable[s] = true;
      any_promotable = true;
    }
  }
  if (any_promotable) {
    for (BasicBlock& bb : fn.blocks) {
      std::unordered_map<uint32_t, int64_t> replace;  // vreg -> const
      for (Instr& instr : bb.instrs) {
        for (Operand& arg : instr.args) {
          if (arg.is_vreg()) {
            auto it = replace.find(arg.vreg);
            if (it != replace.end()) {
              arg = Operand::Const(NormalizeValue(it->second, arg.type), arg.type);
              changed = true;
            }
          }
        }
        if (instr.op == IrOp::kLoadSlot && promotable[instr.slot]) {
          replace[instr.result] = NormalizeValue(store_value[instr.slot], instr.type);
        }
      }
    }
  }

  return changed;
}

bool EliminateDeadCode(Function& fn) {
  bool changed = false;

  // Which slots are ever loaded or addressed?
  std::vector<bool> slot_live(fn.slots.size(), false);
  for (const BasicBlock& bb : fn.blocks) {
    for (const Instr& instr : bb.instrs) {
      if ((instr.op == IrOp::kLoadSlot || instr.op == IrOp::kSlotAddr) &&
          instr.slot != kNoIndex) {
        slot_live[instr.slot] = true;
      }
    }
  }

  for (BasicBlock& bb : fn.blocks) {
    // vregs are block-local, so liveness is a backward scan over the block.
    std::vector<bool> keep(bb.instrs.size(), false);
    std::unordered_map<uint32_t, bool> used;
    for (size_t i = bb.instrs.size(); i-- > 0;) {
      const Instr& instr = bb.instrs[i];
      bool live = IrOpHasSideEffects(instr.op);
      if (instr.op == IrOp::kStoreSlot && !slot_live[instr.slot] &&
          !fn.slots[instr.slot].address_taken) {
        live = false;  // dead store to a never-read slot
      }
      if (instr.result != kNoVreg && used.count(instr.result) != 0) {
        live = true;
      }
      if (live) {
        keep[i] = true;
        for (const Operand& arg : instr.args) {
          if (arg.is_vreg()) {
            used[arg.vreg] = true;
          }
        }
      }
    }
    std::vector<Instr> kept;
    kept.reserve(bb.instrs.size());
    for (size_t i = 0; i < bb.instrs.size(); ++i) {
      if (keep[i]) {
        kept.push_back(std::move(bb.instrs[i]));
      } else {
        changed = true;
      }
    }
    bb.instrs = std::move(kept);
  }
  return changed;
}

}  // namespace mv

#include <unordered_map>

#include "src/opt/passes.h"

namespace mv {

int64_t NormalizeValue(int64_t value, IrType type) {
  if (!type.is_int() || type.bits >= 64) {
    return value;
  }
  const int shift = 64 - type.bits;
  if (type.is_signed) {
    return (value << shift) >> shift;
  }
  return static_cast<int64_t>((static_cast<uint64_t>(value) << shift) >> shift);
}

std::optional<int64_t> EvalBin(BinKind kind, int64_t lhs, int64_t rhs, IrType type) {
  const auto ul = static_cast<uint64_t>(lhs);
  const auto ur = static_cast<uint64_t>(rhs);
  uint64_t result = 0;
  switch (kind) {
    case BinKind::kAdd:
      result = ul + ur;
      break;
    case BinKind::kSub:
      result = ul - ur;
      break;
    case BinKind::kMul:
      result = ul * ur;
      break;
    case BinKind::kSDiv:
      if (rhs == 0 || (lhs == INT64_MIN && rhs == -1)) {
        return std::nullopt;
      }
      result = static_cast<uint64_t>(lhs / rhs);
      break;
    case BinKind::kUDiv:
      if (ur == 0) {
        return std::nullopt;
      }
      result = ul / ur;
      break;
    case BinKind::kSRem:
      if (rhs == 0 || (lhs == INT64_MIN && rhs == -1)) {
        return std::nullopt;
      }
      result = static_cast<uint64_t>(lhs % rhs);
      break;
    case BinKind::kURem:
      if (ur == 0) {
        return std::nullopt;
      }
      result = ul % ur;
      break;
    case BinKind::kAnd:
      result = ul & ur;
      break;
    case BinKind::kOr:
      result = ul | ur;
      break;
    case BinKind::kXor:
      result = ul ^ ur;
      break;
    case BinKind::kShl:
      result = ul << (ur & 63);
      break;
    case BinKind::kLShr:
      result = ul >> (ur & 63);
      break;
    case BinKind::kAShr:
      result = static_cast<uint64_t>(lhs >> (ur & 63));
      break;
  }
  return NormalizeValue(static_cast<int64_t>(result), type);
}

int64_t EvalCmp(CmpPred pred, int64_t lhs, int64_t rhs) {
  const auto ul = static_cast<uint64_t>(lhs);
  const auto ur = static_cast<uint64_t>(rhs);
  switch (pred) {
    case CmpPred::kEq:
      return lhs == rhs;
    case CmpPred::kNe:
      return lhs != rhs;
    case CmpPred::kSLt:
      return lhs < rhs;
    case CmpPred::kSLe:
      return lhs <= rhs;
    case CmpPred::kSGt:
      return lhs > rhs;
    case CmpPred::kSGe:
      return lhs >= rhs;
    case CmpPred::kULt:
      return ul < ur;
    case CmpPred::kULe:
      return ul <= ur;
    case CmpPred::kUGt:
      return ul > ur;
    case CmpPred::kUGe:
      return ul >= ur;
  }
  return 0;
}

bool SubstituteGlobalReads(Function& fn, const std::map<uint32_t, int64_t>& binding,
                           std::vector<std::string>* warnings) {
  bool changed = false;
  for (BasicBlock& bb : fn.blocks) {
    for (Instr& instr : bb.instrs) {
      if (instr.op == IrOp::kLoadGlobal) {
        auto it = binding.find(instr.global);
        if (it == binding.end()) {
          continue;
        }
        // Turn the load into a trivially foldable binary op producing the
        // bound constant: result = const + 0. FoldConstants then propagates
        // it into all uses and DCE removes the definition.
        const int64_t value = NormalizeValue(it->second, instr.type);
        Instr replacement;
        replacement.op = IrOp::kBin;
        replacement.bin = BinKind::kAdd;
        replacement.result = instr.result;
        replacement.type = instr.type;
        replacement.args = {Operand::Const(value, instr.type),
                            Operand::Const(0, instr.type)};
        instr = std::move(replacement);
        changed = true;
      } else if (instr.op == IrOp::kStoreGlobal && warnings != nullptr &&
                 binding.count(instr.global) != 0) {
        warnings->push_back(fn.name + ": write to bound configuration switch @g" +
                            std::to_string(instr.global));
      }
    }
  }
  return changed;
}

bool FoldConstants(Function& fn) {
  bool changed = false;
  for (BasicBlock& bb : fn.blocks) {
    std::unordered_map<uint32_t, int64_t> known;   // vreg -> constant value
    std::unordered_map<uint32_t, Operand> copies;  // vreg -> forwarded operand
    for (Instr& instr : bb.instrs) {
      // Rewrite known-constant and copied vreg operands in place.
      for (Operand& arg : instr.args) {
        if (arg.is_vreg()) {
          auto it = known.find(arg.vreg);
          if (it != known.end()) {
            arg = Operand::Const(NormalizeValue(it->second, arg.type), arg.type);
            changed = true;
            continue;
          }
          auto cp = copies.find(arg.vreg);
          if (cp != copies.end()) {
            Operand repl = cp->second;
            repl.type = arg.type;
            arg = repl;
            changed = true;
          }
        }
      }
      switch (instr.op) {
        case IrOp::kBin: {
          if (instr.args[0].is_const() && instr.args[1].is_const()) {
            std::optional<int64_t> value =
                EvalBin(instr.bin, instr.args[0].imm, instr.args[1].imm, instr.type);
            if (value.has_value()) {
              known[instr.result] = *value;
            }
            break;
          }
          // Algebraic identities with one constant operand. Only those that
          // hold for every width/signedness combination are applied.
          const bool lhs_const = instr.args[0].is_const();
          const Operand const_op = lhs_const ? instr.args[0] : instr.args[1];
          const Operand var_op = lhs_const ? instr.args[1] : instr.args[0];
          if (!const_op.is_const() || !var_op.is_vreg()) {
            break;
          }
          const int64_t c = const_op.imm;
          bool becomes_var = false;   // result == var_op
          bool becomes_zero = false;  // result == 0
          switch (instr.bin) {
            case BinKind::kAdd:
              becomes_var = c == 0;
              break;
            case BinKind::kSub:
              becomes_var = !lhs_const && c == 0;  // x - 0
              break;
            case BinKind::kMul:
              becomes_var = c == 1 && instr.type.bits >= 64;
              becomes_zero = c == 0;
              break;
            case BinKind::kAnd:
              becomes_var = c == -1;
              becomes_zero = c == 0;
              break;
            case BinKind::kOr:
            case BinKind::kXor:
              becomes_var = c == 0;
              break;
            case BinKind::kShl:
            case BinKind::kLShr:
            case BinKind::kAShr:
              becomes_var = !lhs_const && c == 0 && instr.type.bits >= 64;
              break;
            default:
              break;
          }
          if (becomes_zero) {
            known[instr.result] = 0;
          } else if (becomes_var) {
            // Rewrite into a copy: result = var + 0 of the result type, which
            // later folding/DCE propagates. Only safe when the operand type
            // already matches the result type (no implicit re-normalization).
            if (var_op.type == instr.type) {
              const bool already_canonical =
                  instr.bin == BinKind::kAdd && !lhs_const && const_op.imm == 0;
              if (!already_canonical) {
                Instr copy;
                copy.op = IrOp::kBin;
                copy.bin = BinKind::kAdd;
                copy.result = instr.result;
                copy.type = instr.type;
                copy.args = {var_op, Operand::Const(0, instr.type)};
                instr = std::move(copy);
                changed = true;
              }
              // A plain copy: propagate the source operand into later uses.
              copies[instr.result] = var_op;
            }
          }
          break;
        }
        case IrOp::kCmp:
          if (instr.args[0].is_const() && instr.args[1].is_const()) {
            known[instr.result] = EvalCmp(instr.pred, instr.args[0].imm, instr.args[1].imm);
          }
          break;
        case IrOp::kNot:
          if (instr.args[0].is_const()) {
            known[instr.result] = NormalizeValue(~instr.args[0].imm, instr.type);
          }
          break;
        case IrOp::kNeg:
          if (instr.args[0].is_const()) {
            known[instr.result] = NormalizeValue(-instr.args[0].imm, instr.type);
          }
          break;
        case IrOp::kTrunc:
          if (instr.args[0].is_const()) {
            known[instr.result] = NormalizeValue(instr.args[0].imm, instr.type);
          }
          break;
        case IrOp::kSext:
          if (instr.args[0].is_const()) {
            const int shift = 64 - static_cast<int>(instr.imm);
            known[instr.result] =
                NormalizeValue((instr.args[0].imm << shift) >> shift, instr.type);
          }
          break;
        case IrOp::kCondBr:
          if (instr.args[0].is_const()) {
            const uint32_t target = instr.args[0].imm != 0 ? instr.bb_then : instr.bb_else;
            Instr br;
            br.op = IrOp::kBr;
            br.bb_then = target;
            instr = std::move(br);
            changed = true;
          }
          break;
        default:
          break;
      }
    }
  }
  return changed;
}

}  // namespace mv

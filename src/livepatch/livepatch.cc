#include "src/livepatch/livepatch.h"

#include <algorithm>
#include <cstring>
#include <memory>

#include "src/core/patching.h"
#include "src/core/txn.h"
#include "src/isa/isa.h"
#include "src/support/str.h"

namespace mv {

const char* CommitProtocolName(CommitProtocol protocol) {
  switch (protocol) {
    case CommitProtocol::kUnsafe:
      return "unsafe";
    case CommitProtocol::kQuiescence:
      return "quiescence";
    case CommitProtocol::kBreakpoint:
      return "breakpoint";
    case CommitProtocol::kWaitFree:
      return "waitfree";
  }
  return "?";
}

Result<CommitProtocol> ParseCommitProtocol(const std::string& name) {
  if (name == "unsafe") {
    return CommitProtocol::kUnsafe;
  }
  if (name == "quiescence" || name == "stop-machine") {
    return CommitProtocol::kQuiescence;
  }
  if (name == "breakpoint" || name == "bkpt") {
    return CommitProtocol::kBreakpoint;
  }
  if (name == "waitfree" || name == "wait-free") {
    return CommitProtocol::kWaitFree;
  }
  return Status::InvalidArgument(
      StrFormat("unknown live-commit protocol '%s' "
                "(expected unsafe|quiescence|breakpoint|waitfree)",
                name.c_str()));
}

namespace {

struct Mutator {
  int core = 0;
  bool done = false;       // halted
  bool parked = false;     // trapped on an in-flight BKPT site
  uint64_t park_site = 0;  // site address the core is parked at
};

// The protocol engine for one live commit: owns the plan, the virtual host
// patch clock, and the mutator bookkeeping.
class Engine {
 public:
  Engine(Vm* vm, MultiverseRuntime* runtime, const LiveCommitOptions& options)
      : vm_(vm), runtime_(runtime), options_(options), session_(runtime) {
    for (int core : options.mutator_cores) {
      Mutator m;
      m.core = core;
      m.done = vm_->core(core).halted;
      mutators_.push_back(m);
    }
  }

  Result<LiveCommitStats> Run() {
    // The host starts patching "now": at the time of the furthest-ahead
    // mutator. Cores that are behind execute work they would have done
    // anyway, concurrently with the patching.
    host_clock_ = 0;
    for (const Mutator& m : mutators_) {
      host_clock_ = std::max(host_clock_, vm_->core(m.core).ticks);
    }
    const uint64_t start_clock = host_clock_;

    // The whole live commit is one transaction (txn.h): each attempt
    // re-plans against restored bookkeeping, the protocol applies through
    // the journal, and a failed attempt is rolled back — original bytes,
    // protections, flushes — before a bounded retry.
    std::shared_ptr<const MultiverseRuntime::SavedState> saved;
    TxnHooks hooks;
    hooks.plan = [&]() -> Result<PatchPlan> {
      saved = runtime_->SaveState();
      Result<PatchStats> planned = session_.PlanCommit();
      if (!planned.ok()) {
        runtime_->RestoreState(*saved);
        return planned.status();
      }
      stats_.patch = *planned;
      // Every op the protocols will write is a patch point: any threaded
      // trace compiled over these bytes carries a site->slot map, and its
      // eviction at apply time is counted as a patch-point commit.
      for (const PatchOp& op : session_.plan()) {
        vm_->RegisterPatchPoint(op.addr, op.new_bytes.size());
      }
      return session_.plan();
    };
    hooks.apply = [&](PatchJournal* journal) -> Status {
      journal_ = journal;
      Status status = Status::Ok();
      switch (options_.protocol) {
        case CommitProtocol::kUnsafe:
          status = RunUnsafe();
          break;
        case CommitProtocol::kQuiescence:
          status = RunQuiescence();
          break;
        case CommitProtocol::kBreakpoint:
          status = RunBreakpoint();
          break;
        case CommitProtocol::kWaitFree:
          status = RunWaitFree();
          break;
      }
      journal_ = nullptr;
      return status;
    };
    hooks.restore = [&]() {
      runtime_->RestoreState(*saved);
      // The rollback restored and flushed the original bytes under any
      // parked core; release it — it refetches the pristine site.
      for (Mutator& m : mutators_) {
        m.parked = false;
        m.park_site = 0;
      }
      // Charge the undo writes + flushes to the host patch clock.
      host_clock_ += stats_.txn.recovery_ticks - recovery_charged_;
      recovery_charged_ = stats_.txn.recovery_ticks;
    };
    hooks.retryable = [&](const Status&) { return !mutator_wedged_; };
    hooks.backoff = [&](uint64_t ticks) { host_clock_ += ticks; };

    const uint64_t evictions_before = vm_->superblock_evictions();
    MV_RETURN_IF_ERROR(RunCommitTxn(vm_, &runtime_->image(), options_.txn,
                                    hooks, &stats_.txn));

    stats_.commit_ticks = host_clock_ - start_clock;
    stats_.ops_applied = static_cast<int>(session_.plan().size());
    stats_.commit_epoch = vm_->code_epoch();
    stats_.superblock_evictions = vm_->superblock_evictions() - evictions_before;
    return stats_;
  }

 private:
  // --- mutator co-simulation -----------------------------------------------

  // Single-steps one mutator, classifying the exit. `inflight` is the set of
  // site addresses where a BKPT is currently legitimate.
  Status StepMutator(Mutator* m, const std::vector<uint64_t>& inflight) {
    std::optional<VmExit> exit = vm_->Step(m->core);
    if (!exit.has_value()) {
      return Status::Ok();
    }
    switch (exit->kind) {
      case VmExit::Kind::kHalt:
        m->done = true;
        ++stats_.mutators_finished;
        return Status::Ok();
      case VmExit::Kind::kBreakpoint: {
        const uint64_t pc = vm_->core(m->core).pc;
        if (std::find(inflight.begin(), inflight.end(), pc) != inflight.end()) {
          m->parked = true;
          m->park_site = pc;
          ++stats_.bkpt_traps;
          return Status::Ok();
        }
        mutator_wedged_ = true;
        return Status::Internal(
            StrFormat("core %d trapped on a breakpoint at 0x%llx outside any "
                      "in-flight patch site",
                      m->core, (unsigned long long)pc));
      }
      case VmExit::Kind::kFault:
        // The core is stopped at the fault: rolling back the text cannot
        // resurrect it, so the transaction must not retry.
        mutator_wedged_ = true;
        return Status::Internal(
            StrFormat("core %d faulted during live commit: %s", m->core,
                      exit->fault.ToString().c_str()));
      case VmExit::Kind::kVmCall:
        mutator_wedged_ = true;
        return Status::Internal(StrFormat(
            "core %d issued a VMCALL during live commit (unsupported)", m->core));
      case VmExit::Kind::kStepLimit:
        mutator_wedged_ = true;
        return Status::Internal("unexpected step-limit exit");
    }
    mutator_wedged_ = true;
    return Status::Internal("unhandled VM exit");
  }

  // Runs every runnable mutator until its tick clock catches up with the
  // host patch clock — the "mutators execute while the host patches" half of
  // the co-simulation.
  Status RunMutatorsToHostClock(const std::vector<uint64_t>& inflight) {
    for (Mutator& m : mutators_) {
      while (!m.done && !m.parked && vm_->core(m.core).ticks < host_clock_) {
        MV_RETURN_IF_ERROR(StepMutator(&m, inflight));
      }
    }
    return Status::Ok();
  }

  // Single-steps `m` until `pred(pc)` no longer holds (bounded).
  template <typename Pred>
  Status StepOutOf(Mutator* m, const std::vector<uint64_t>& inflight, Pred pred,
                   const char* what) {
    uint64_t steps = 0;
    while (!m->done && !m->parked && pred(vm_->core(m->core).pc)) {
      if (++steps > options_.max_rendezvous_steps) {
        return Status::Internal(StrFormat("core %d could not be stepped %s "
                                          "within %llu instructions",
                                          m->core, what,
                                          (unsigned long long)options_.max_rendezvous_steps));
      }
      MV_RETURN_IF_ERROR(StepMutator(m, inflight));
      ++stats_.rendezvous_steps;
    }
    return Status::Ok();
  }

  // --- host patch actions --------------------------------------------------

  // Writes bytes belonging to plan op `op_index`, journaling the touch (so a
  // rollback knows to undo it) and the flush obligation (so seal detects a
  // suppressed invalidation) before the first byte changes.
  Status HostWrite(size_t op_index, uint64_t addr, const uint8_t* data,
                   uint64_t len) {
    MV_RETURN_IF_ERROR(journal_->MarkTouched(op_index));
    if (options_.flush_icache) {
      journal_->ExpectFlush();
    }
    MV_RETURN_IF_ERROR(WriteCodeBytes(vm_, addr, data, len, options_.flush_icache));
    host_clock_ += vm_->cost_model().patch_write;
    stats_.mprotect_calls += 2;  // WriteCodeBytes: W^X up, W^X down
    if (options_.flush_icache) {
      host_clock_ += vm_->cost_model().icache_flush_ipi;
      ++stats_.icache_flushes;
      ++stats_.flush_ranges;
    }
    return Status::Ok();
  }

  // HostWrite through an already-open PageWriteBatch: page protects are
  // coalesced across the batch's lifetime, but the flush stays per-write —
  // the breakpoint protocol's ordering (BKPT visible before tail bytes,
  // tail bytes before the final first byte) depends on it.
  Status HostWriteBatched(PageWriteBatch* batch, size_t op_index, uint64_t addr,
                          const uint8_t* data, uint64_t len) {
    MV_RETURN_IF_ERROR(journal_->MarkTouched(op_index));
    if (options_.flush_icache) {
      journal_->ExpectFlush();
    }
    MV_RETURN_IF_ERROR(batch->Acquire(addr, len));
    MV_RETURN_IF_ERROR(batch->Write(addr, data, len));
    host_clock_ += vm_->cost_model().patch_write;
    if (options_.flush_icache) {
      vm_->FlushIcache(addr, len);
      host_clock_ += vm_->cost_model().icache_flush_ipi;
      ++stats_.icache_flushes;
      ++stats_.flush_ranges;
    }
    return Status::Ok();
  }

  // --- protocols -----------------------------------------------------------

  Status RunUnsafe() {
    // The paper's semantics: write each site atomically, flush, never look
    // at the other cores. Because there is no synchronization, the relative
    // order of the host's writes and the mutators' progress is arbitrary on
    // real hardware; the co-simulation models the adversarial case — the
    // mutators stand wherever the caller's schedule left them for the whole
    // patch window. A core whose pc is inside a rewritten multi-instruction
    // site therefore resumes in the middle of the new encoding.
    const PatchPlan& plan = session_.plan();
    for (size_t i = 0; i < plan.size(); ++i) {
      MV_RETURN_IF_ERROR(HostWrite(i, plan[i].addr, plan[i].new_bytes.data(),
                                   plan[i].new_bytes.size()));
    }
    return Status::Ok();
  }

  Status RunQuiescence() {
    const std::vector<CodeRange> ranges = session_.UnsafeRanges();

    // Let everyone catch up with the host, then rendezvous. A core is at a
    // safe point when it sits on an instruction boundary outside every
    // to-be-patched range AND can take the stop-machine IPI — a core in an
    // interrupts-disabled critical section is unreachable until it STIs.
    // The not-yet-safe cores are stepped round-robin (one instruction each
    // per round) under a shared budget: stepping them together lets a core
    // spinning on a lock observe its holder's progress, where stepping one
    // core to exhaustion before the next would deadlock the rendezvous.
    MV_RETURN_IF_ERROR(RunMutatorsToHostClock({}));
    const auto at_safe_point = [&](const Mutator& m) {
      if (m.done) {
        return true;
      }
      const Core& core = vm_->core(m.core);
      if (!core.interrupts_enabled) {
        return false;
      }
      return std::none_of(ranges.begin(), ranges.end(), [&core](const CodeRange& r) {
        return r.Contains(core.pc);
      });
    };
    const uint64_t budget = options_.max_rendezvous_steps *
                            std::max<uint64_t>(1, mutators_.size());
    uint64_t steps = 0;
    for (;;) {
      bool all_safe = true;
      for (Mutator& m : mutators_) {
        if (at_safe_point(m)) {
          continue;
        }
        all_safe = false;
        if (++steps > budget) {
          return Status::Internal(StrFormat(
              "core %d did not reach a quiescence safe point within %llu "
              "instructions (spinning in a patch range or an "
              "interrupts-disabled critical section)",
              m.core, (unsigned long long)budget));
        }
        MV_RETURN_IF_ERROR(StepMutator(&m, {}));
        ++stats_.rendezvous_steps;
      }
      if (all_safe) {
        break;
      }
    }

    // Stop machine: every active core is frozen from here to the release.
    int active = 0;
    for (const Mutator& m : mutators_) {
      if (!m.done) {
        host_clock_ = std::max(host_clock_, vm_->core(m.core).ticks);
        ++active;
      }
    }
    host_clock_ += vm_->cost_model().stop_machine_ipi * static_cast<uint64_t>(active);

    // Every core is frozen, so ordering within the window is invisible: the
    // fully-coalesced shape applies. One W^X toggle per page up, all writes,
    // one toggle per page down, then one flush per merged range — instead of
    // two mprotects and a flush IPI per 5-byte site.
    const PatchPlan& plan = session_.plan();
    PageWriteBatch batch(vm_);
    for (size_t i = 0; i < plan.size(); ++i) {
      MV_RETURN_IF_ERROR(journal_->MarkTouched(i));
      MV_RETURN_IF_ERROR(batch.Acquire(plan[i].addr, plan[i].new_bytes.size()));
      MV_RETURN_IF_ERROR(batch.Write(plan[i].addr, plan[i].new_bytes.data(),
                                     plan[i].new_bytes.size()));
      host_clock_ += vm_->cost_model().patch_write;
      if (options_.flush_icache) {
        batch.QueueFlush(plan[i].addr, plan[i].new_bytes.size());
      }
    }
    MV_RETURN_IF_ERROR(batch.Release());
    for (const CodeRange& range : batch.MergedFlushRanges()) {
      journal_->ExpectFlush();
      vm_->FlushIcache(range.addr, range.len);
      host_clock_ += vm_->cost_model().icache_flush_ipi;
      ++stats_.icache_flushes;
      ++stats_.flush_ranges;
    }
    stats_.mprotect_calls += batch.protect_calls();

    // Release: the frozen cores resume at the host clock; the difference is
    // the per-core disturbance the stop-machine caused.
    for (const Mutator& m : mutators_) {
      if (m.done) {
        continue;
      }
      Core& core = vm_->core(m.core);
      if (core.ticks < host_clock_) {
        stats_.stopped_ticks += host_clock_ - core.ticks;
        core.ticks = host_clock_;
      }
      ++stats_.cores_stopped;
    }
    return Status::Ok();
  }

  Status RunBreakpoint() {
    // Batched text_poke_bp: every site traps before any site changes shape,
    // so each mutator crosses from old text to new text at most once. During
    // the whole window a site is old, trapping, or new — and no core can
    // reach an old site after executing a new one (phase 1/2 have no new
    // sites; phase 3/4 have no old ones). That one-way switch is what keeps
    // cross-site invariants intact, e.g. a lock acquired through a new
    // callsite can never be "released" through a raw-old one. The residual
    // old-before-park -> new-after-release mix is why live commits must move
    // in the strict->stricter direction (UP -> SMP); see INTERNALS.md §9.
    const PatchPlan& plan = session_.plan();
    std::vector<uint64_t> inflight;
    inflight.reserve(plan.size());
    for (const PatchOp& op : plan) {
      inflight.push_back(op.addr);
    }

    // One batch spans all four phases: each page's W^X toggles up once at
    // its first write and back down once at the end, instead of per write
    // (3 writes x 2 mprotects per site otherwise). Mutators keep executing
    // from the writable pages — CheckExec only requires X, matching real
    // text_poke, which writes through a separate alias mapping precisely so
    // the text mapping never changes. Flushes stay per-write (HostWriteBatched):
    // the protocol's phase ordering depends on each write being visible
    // before the next.
    PageWriteBatch batch(vm_);

    // 1. BKPT over every first byte: from here on, no core can *enter* any
    //    site — sequential or jump entry fetches the trap and parks.
    for (size_t i = 0; i < plan.size(); ++i) {
      MV_RETURN_IF_ERROR(HostWriteBatched(&batch, i, plan[i].addr, &kBkptByte, 1));
      MV_RETURN_IF_ERROR(RunMutatorsToHostClock(inflight));
    }

    // 2. Evict cores sitting *inside* a site (mid-way through a
    //    NOP-eradicated body): step them to its end before the tail bytes
    //    change under their feet. They cannot re-enter past the BKPTs.
    for (const PatchOp& op : plan) {
      for (Mutator& m : mutators_) {
        MV_RETURN_IF_ERROR(StepOutOf(
            &m, inflight,
            [&op](uint64_t pc) { return pc > op.addr && pc < op.addr + 5; },
            "out of an in-flight patch site"));
      }
    }

    // 3. All tail bytes while every first byte still traps (text_poke_bp
    //    order).
    for (size_t i = 0; i < plan.size(); ++i) {
      MV_RETURN_IF_ERROR(HostWriteBatched(
          &batch, i, plan[i].addr + 1, plan[i].new_bytes.data() + 1, 4));
      MV_RETURN_IF_ERROR(RunMutatorsToHostClock(inflight));
    }

    // 4. Final first bytes; unpark as each site completes. A released core
    //    refetches the finished site, and every other site is by now either
    //    finished or still trapping — raw-old text is unreachable.
    for (size_t i = 0; i < plan.size(); ++i) {
      const PatchOp& op = plan[i];
      MV_RETURN_IF_ERROR(HostWriteBatched(&batch, i, op.addr, op.new_bytes.data(), 1));
      for (Mutator& m : mutators_) {
        if (m.parked && m.park_site == op.addr) {
          Core& core = vm_->core(m.core);
          if (core.ticks < host_clock_) {
            stats_.parked_ticks += host_clock_ - core.ticks;
            core.ticks = host_clock_;
          }
          m.parked = false;
        }
      }
      MV_RETURN_IF_ERROR(RunMutatorsToHostClock(inflight));
    }

    MV_RETURN_IF_ERROR(batch.Release());
    stats_.mprotect_calls += batch.protect_calls();
    return RunMutatorsToHostClock({});
  }

  Status RunWaitFree() {
    // Single-word atomic retargeting: codegen aligns every patchable site so
    // its five bytes sit inside one naturally aligned 8-byte word
    // (site_addr % 8 <= 3; enforced by the paranoid attach validation), and
    // each site is rewritten with one atomic word store — read the containing
    // word, splice the new bytes, store the word. Instruction execution is
    // atomic at instruction granularity, so a concurrent fetcher decodes
    // either the complete old site or the complete new one; no core is ever
    // stopped and nothing parks at a trap. A plan op that violates the
    // invariant (hand-built descriptors, or a multi-word body patch) cannot
    // be stored atomically, so the whole commit degrades to the breakpoint
    // protocol — still sound, just not disturbance-free.
    const PatchPlan& plan = session_.plan();
    for (const PatchOp& op : plan) {
      if (op.addr % 8 > 3) {
        stats_.waitfree_fallback = true;
        return RunBreakpoint();
      }
    }

    // Epoch gate (reclamation safety): deliver every queued superblock
    // invalidation before the first store, so no core can still hold a
    // decode of text an *earlier* commit rewrote when this one reuses it.
    // The co-simulation interleaves at instruction granularity, so no core
    // is mid-dispatch here; running mutators reconcile themselves at every
    // Step entry, and the explicit pass covers halted cores and cores the
    // caller parked by contract.
    MV_RETURN_IF_ERROR(RunMutatorsToHostClock({}));
    for (int c = 0; c < vm_->num_cores(); ++c) {
      vm_->ReconcileCore(c);
    }

    // Apply in *reverse* plan order. Plan order groups sites by callee
    // function ascending, which patches acquire-side call sites before the
    // matching release-side ones; with mutators running between stores, a
    // core could then take a lock through a new acquire and release it
    // through a still-old release that no longer pairs with it. Reversed,
    // every release-side site is new before any acquire-side site changes —
    // the one-way strict->stricter direction rule of INTERNALS.md §9,
    // without the stop-the-world or trap-barrier the other protocols use.
    PageWriteBatch batch(vm_);
    for (size_t ri = plan.size(); ri-- > 0;) {
      const PatchOp& op = plan[ri];
      // A pc *inside* the 5-byte window is possible only for NOP-eradicated
      // sites (five 1-byte instructions); such a core would resume mid-site
      // after the store and decode operand bytes as opcodes. Step it out
      // first; pc == op.addr is fine — its next fetch decodes a complete
      // site either way.
      for (Mutator& m : mutators_) {
        MV_RETURN_IF_ERROR(StepOutOf(
            &m, {},
            [&op](uint64_t pc) { return pc > op.addr && pc < op.addr + 5; },
            "out of a wait-free patch site"));
      }

      MV_RETURN_IF_ERROR(journal_->MarkTouched(ri));
      if (options_.flush_icache) {
        journal_->ExpectFlush();
      }
      const uint64_t word = op.addr & ~UINT64_C(7);
      uint8_t buf[8];
      MV_RETURN_IF_ERROR(vm_->memory().ReadRaw(word, buf, sizeof buf));
      std::memcpy(buf + (op.addr - word), op.new_bytes.data(),
                  op.new_bytes.size());
      MV_RETURN_IF_ERROR(batch.Acquire(word, sizeof buf));
      MV_RETURN_IF_ERROR(batch.Write(word, buf, sizeof buf));
      host_clock_ += vm_->cost_model().patch_write;
      ++stats_.word_stores;
      if (options_.flush_icache) {
        vm_->FlushIcache(op.addr, op.new_bytes.size());
        host_clock_ += vm_->cost_model().icache_flush_ipi;
        ++stats_.icache_flushes;
        ++stats_.flush_ranges;
      }
      MV_RETURN_IF_ERROR(RunMutatorsToHostClock({}));
    }

    MV_RETURN_IF_ERROR(batch.Release());
    stats_.mprotect_calls += batch.protect_calls();
    MV_RETURN_IF_ERROR(RunMutatorsToHostClock({}));
    // Close the epoch: cores that finished mid-commit take their queued
    // invalidations now, so code_epoch()/core_epoch() agree that the old
    // text is reclaimable the moment the commit returns.
    for (const Mutator& m : mutators_) {
      if (m.done) {
        vm_->ReconcileCore(m.core);
      }
    }
    return Status::Ok();
  }

  Vm* vm_;
  MultiverseRuntime* runtime_;
  const LiveCommitOptions& options_;
  LivePatchSession session_;
  std::vector<Mutator> mutators_;
  LiveCommitStats stats_;
  uint64_t host_clock_ = 0;
  PatchJournal* journal_ = nullptr;  // live during hooks.apply
  bool mutator_wedged_ = false;      // a mutator core faulted: do not retry
  uint64_t recovery_charged_ = 0;    // recovery_ticks already on host_clock_
};

}  // namespace

Result<LiveCommitStats> LivePatcher::Commit(const LiveCommitOptions& options) {
  Engine engine(vm_, runtime_, options);
  return engine.Run();
}

Result<LiveCommitStats> multiverse_commit_live(Vm* vm, MultiverseRuntime* runtime,
                                               const LiveCommitOptions& options) {
  LivePatcher patcher(vm, runtime);
  return patcher.Commit(options);
}

CommitProtocol PreferredProtocol(const MultiverseRuntime& runtime) {
  const DescriptorTable& table = runtime.table();
  for (const RtCallsite& site : table.callsites) {
    if (site.site_addr % 8 > 3) {
      return CommitProtocol::kBreakpoint;
    }
  }
  for (const RtFunction& fn : table.functions) {
    if (fn.generic_addr % 8 > 3) {
      return CommitProtocol::kBreakpoint;
    }
  }
  return CommitProtocol::kWaitFree;
}

}  // namespace mv

// Live patching: making multiverse_commit() safe while other VM cores
// execute.
//
// The paper's runtime performs no cross-modification synchronization
// (§2/§7.3): consistency is the caller's contract. That is untenable once
// switches flip under load (thread create/exit in the musl workload, CPU
// hotplug in the kernel workload), so this subsystem provides two protocols
// layered on the batched patch plans of src/core/livepatch_session.h:
//
//  * kQuiescence — stop-machine: rendezvous every mutator core at a safe
//    point (an instruction boundary outside every to-be-patched range),
//    freeze them, apply the whole plan, flush, release. Commit latency is
//    paid once; every core is disturbed for the full patch window. This is
//    the Linux stop_machine() lineage used by the `alternative` macros the
//    paper subsumes (§1.1).
//
//  * kBreakpoint — INT3-style cross-modification (Linux text_poke_bp): for
//    each 5-byte site, write a 1-byte BKPT over the first byte, flush, write
//    the four tail bytes, flush, then the final first byte, flush. A core
//    that fetches the in-flight site traps (VmExit::kBreakpoint) and is
//    parked until the site is complete; cores executing elsewhere are never
//    stopped. Cores parked *inside* a multi-instruction site (possible for
//    NOP-eradicated call sites) are single-stepped out before the tail
//    write.
//
//  * kUnsafe — the paper's semantics, kept as the baseline: apply each op
//    immediately with no safe-point checks. Under load this can tear: a core
//    resuming inside a rewritten site decodes operand bytes as opcodes.
//
//  * kWaitFree — single-word atomic retargeting: codegen aligns every
//    patchable 5-byte site so its bytes sit inside one naturally aligned
//    8-byte word (site_addr % 8 <= 3), and the protocol rewrites each site
//    with one atomic word store (read the containing word, splice the five
//    new bytes, store the word). A concurrent fetcher observes either the
//    complete old site or the complete new site — both valid instructions —
//    so no core is ever stopped and none parks at a trap: zero disturbance.
//    Cores whose pc sits *inside* a multi-instruction site (NOP-eradicated
//    call sites) are single-stepped out first, and per-core commit epochs
//    (Vm::code_epoch/core_epoch) gate completion so old text is never
//    reused while a core may still hold a stale superblock decode. Plans
//    containing a misaligned op (hand-built or corrupted descriptors, or a
//    multi-word body patch) fall back to the breakpoint protocol.
//
// The engine co-simulates host and guest deterministically: each host patch
// action advances a virtual patch clock (cost_model.h patch_write /
// icache_flush_ipi / stop_machine_ipi), and mutator cores execute until
// their own tick clocks catch up — so commit latency and per-core
// disturbance are measurable in modelled cycles (bench_commit_under_load).
#ifndef MULTIVERSE_SRC_LIVEPATCH_LIVEPATCH_H_
#define MULTIVERSE_SRC_LIVEPATCH_LIVEPATCH_H_

#include <string>
#include <vector>

#include "src/core/livepatch_session.h"
#include "src/core/runtime.h"
#include "src/core/txn.h"
#include "src/support/status.h"
#include "src/vm/vm.h"

namespace mv {

enum class CommitProtocol {
  kUnsafe,      // the paper's unsynchronized commit (baseline)
  kQuiescence,  // stop-machine rendezvous
  kBreakpoint,  // BKPT cross-modification
  kWaitFree,    // atomic word-store retargeting; zero disturbance
};

const char* CommitProtocolName(CommitProtocol protocol);
Result<CommitProtocol> ParseCommitProtocol(const std::string& name);

struct LiveCommitOptions {
  CommitProtocol protocol = CommitProtocol::kQuiescence;
  // Cores that are executing guest code while the commit runs. The engine
  // steps them itself, interleaved with the patch writes. Cores not listed
  // must not be executing (the caller's contract, as in the paper).
  std::vector<int> mutator_cores;
  // Fault injection: when false, no icache invalidations are issued after
  // the patch writes. Combine with Vm::set_stale_fetch_detection(true) to
  // assert that stale execution is detected rather than silent.
  bool flush_icache = true;
  // Bound on the single-steps used to move one core to a safe point /
  // out of an in-flight site. The quiescence rendezvous gets this budget
  // per mutator core, shared round-robin, so one core spinning on a lock
  // held by a not-yet-safe peer cannot starve the rendezvous. Exceeding
  // the budget fails the attempt (rolled back, then retried with backoff —
  // a core in an interrupts-disabled critical section may re-enable them).
  uint64_t max_rendezvous_steps = 1000;
  // Transactional-commit tuning: retry budget, backoff, validation (txn.h).
  TxnOptions txn;
};

struct LiveCommitStats {
  PatchStats patch;            // what the underlying commit did (Table 1)
  int ops_applied = 0;         // 5-byte patch ops written to guest memory
  uint64_t commit_ticks = 0;   // host patch clock: start-to-finish latency
  uint64_t icache_flushes = 0;
  // Page-coalesced write accounting: W^X toggles actually issued and merged
  // flush ranges (quiescence flushes once per merged range; breakpoint keeps
  // per-write flushes for ordering but still coalesces page protects).
  uint64_t mprotect_calls = 0;
  uint64_t flush_ranges = 0;

  // Disturbance of the mutator cores.
  int cores_stopped = 0;          // cores frozen by the quiescence protocol
  uint64_t stopped_ticks = 0;     // total ticks cores spent frozen
  uint64_t rendezvous_steps = 0;  // single-steps to reach safe points
  int bkpt_traps = 0;             // cores that trapped on an in-flight site
  uint64_t parked_ticks = 0;      // total ticks cores spent parked at a BKPT
  int mutators_finished = 0;      // mutators that ran to completion mid-commit

  // Wait-free protocol accounting.
  uint64_t word_stores = 0;         // atomic 8-byte stores issued
  bool waitfree_fallback = false;   // plan had a misaligned op; ran kBreakpoint
  uint64_t commit_epoch = 0;        // Vm::code_epoch() after the commit
  uint64_t superblock_evictions = 0;  // evictions caused by this commit

  // Transactional accounting: attempts, rollbacks, retries, seal repairs
  // (txn.h). rollbacks > 0 with an Ok() result means a transient failure was
  // recovered by retry.
  TxnStats txn;

  double CommitCycles() const { return TicksToCycles(commit_ticks); }
  double DisturbanceCycles() const {
    return TicksToCycles(stopped_ticks + parked_ticks);
  }

  // Folds the live-commit outcome into the reusable health counters
  // (src/core/commit_stats.h) that benches and the fleet coordinator
  // accumulate.
  CommitStats Summary() const {
    CommitStats stats;
    stats.rollbacks = txn.rollbacks;
    stats.retries = txn.retries;
    stats.disturbance_cycles = DisturbanceCycles();
    stats.parked_cycles = TicksToCycles(parked_ticks);
    stats.superblock_evictions = superblock_evictions;
    stats.waitfree_fallbacks = waitfree_fallback ? 1 : 0;
    return stats;
  }
};

class LivePatcher {
 public:
  LivePatcher(Vm* vm, MultiverseRuntime* runtime) : vm_(vm), runtime_(runtime) {}

  // Plans a full multiverse_commit() and applies it with the selected
  // protocol, as one transaction (src/core/txn.h): on a mid-commit failure
  // (a mutator faulted, trapped unexpectedly, or could not be brought to a
  // safe point) the applied ops are rolled back in reverse order, the
  // runtime bookkeeping is restored, and — for transient causes — the
  // commit is retried with backoff. On final error the image behaves as if
  // the commit was never issued; a wedged mutator core (it faulted on torn
  // or stale text) is the one thing rollback cannot repair, and the error
  // says so. With an empty mutator list this degrades to a batched (but
  // still protocol-shaped, still transactional) multiverse_commit().
  Result<LiveCommitStats> Commit(const LiveCommitOptions& options);

 private:
  Vm* vm_;
  MultiverseRuntime* runtime_;
};

// The Table 1-style entry point: multiverse_commit(), made safe under
// concurrency. Layered on LivePatcher.
Result<LiveCommitStats> multiverse_commit_live(Vm* vm, MultiverseRuntime* runtime,
                                               const LiveCommitOptions& options);

// Per-instance protocol selection for fleet coordinators: kWaitFree when the
// instance's layout upholds the single-word alignment invariant (every
// patchable call site and generic prologue starts at addr % 8 <= 3, so each
// 5-byte rewrite fits one naturally aligned word), else kBreakpoint — the
// protocol the wait-free engine would fall back to anyway, selected up front
// so the coordinator can log and account it per instance.
CommitProtocol PreferredProtocol(const MultiverseRuntime& runtime);

}  // namespace mv

#endif  // MULTIVERSE_SRC_LIVEPATCH_LIVEPATCH_H_
